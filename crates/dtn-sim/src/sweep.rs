//! Parallel parameter sweeps — the engine behind every Fig. 8 / Fig. 9
//! series.
//!
//! A sweep is `axis points x policies x seeds` independent simulations.
//! Runs are embarrassingly parallel and fully deterministic, so the
//! runner spreads the job list over a crossbeam scoped-thread pool
//! (guide-recommended for fork-join parallelism without lifetime
//! contortions) and averages the per-seed reports.
//!
//! The runner is *hardened*:
//!
//! * Every job executes under [`std::panic::catch_unwind`]. A panicking
//!   cell becomes a structured [`CellError`] (config hash, axis/policy/
//!   seed, panic payload) in the [`SweepOutput`] instead of killing the
//!   scope — all other cells are always returned.
//! * With a [`SweepCheckpoint`] attached, every finished job is
//!   streamed to a JSONL file as a [`CellRun`] keyed by the canonical
//!   config hash ([`dtn_telemetry::hash_config_json`]). Resuming skips
//!   already-completed jobs and reproduces the uninterrupted run
//!   bit-identically (per-run [`ReportFingerprint`]s): the checkpoint
//!   stores the exact integer digest and the exact `f64` metrics
//!   (shortest-roundtrip JSON), so aggregation over restored runs is
//!   byte-for-byte the same as over live ones.
//! * [`SweepSpec::validate`] attaches a `dtn-validate` `Validator` to
//!   every world and folds invariant-violation counts into each
//!   [`SweepCell`] and [`CellRun`].
//!
//! The runner is also *shard-able*: [`materialize_jobs`] turns a spec
//! into the exact job list, [`execute_job`] runs a single fully-resolved
//! job, [`aggregate_sweep`] folds an arbitrary [`CellsOutput`] back into
//! the per-`(axis, policy)` cells, and [`open_checkpoint`] restores (and
//! merges) prior checkpoint files for any job list. `dtn-fleet` builds
//! its distributed coordinator/worker fan-out entirely out of these
//! units, so a fleet sweep aggregates bit-identically to
//! [`run_sweep_hardened`].
//!
//! Checkpoint I/O failures are *structured*, not fatal: a bad checkpoint
//! path degrades the sweep to an uncheckpointed (but complete) run and
//! surfaces a [`CheckpointError`] in the output instead of aborting.

use crate::config::{PolicyKind, ScenarioConfig};
use crate::report::Report;
use crate::world::World;
use dtn_core::stats::OnlineStats;
use dtn_core::units::Bytes;
use dtn_telemetry::{hash_config_json, EventTotals, Recorder, SweepEvent};
use dtn_validate::ReportFingerprint;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

/// The swept parameter — the paper's three x-axes, plus the churn
/// (fault-injection) axis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SweepAxis {
    /// Initial copies `L` (Fig. 8/9 a-c): 16, 20, ..., 64.
    InitialCopies(Vec<u32>),
    /// Buffer size in MB (Fig. 8/9 d-f): 2, 2.5, ..., 5.
    BufferMb(Vec<f64>),
    /// Message generation interval `[lo, hi]` seconds (Fig. 8/9 g-i):
    /// `[10,15]`, `[15,20]`, ..., `[45,50]`.
    GenInterval(Vec<(f64, f64)>),
    /// Per-node crash rate in crashes/hour (churn robustness). Applying
    /// a non-zero rate to a template whose `reboot_secs` is unset (0)
    /// defaults the down window to 60 s so the point still validates.
    CrashRate(Vec<f64>),
    /// Eq. 13 Taylor truncation depth for the SDSRP priority (`None` =
    /// the exact Eq. 10 closed form) — the Fig. 4 accuracy/compute
    /// ablation as a sweep. Only SDSRP policies are affected: each
    /// point rewrites an `Sdsrp`/`SdsrpCustom` policy's Taylor setting
    /// and leaves every other policy unchanged (flat reference lines).
    TaylorTerms(Vec<Option<u32>>),
    /// Buffer-occupancy threshold for the congestion-adaptive policies:
    /// each point rewrites an `OccupancyGate` or `TieredRetention`
    /// policy's threshold and leaves every other policy unchanged (flat
    /// reference lines), mirroring [`SweepAxis::TaylorTerms`].
    OccupancyThreshold(Vec<f64>),
}

impl SweepAxis {
    /// The paper's initial-copies sweep.
    pub fn paper_copies() -> Self {
        SweepAxis::InitialCopies((16..=64).step_by(4).collect())
    }

    /// The paper's buffer-size sweep.
    pub fn paper_buffers() -> Self {
        SweepAxis::BufferMb(vec![2.0, 2.5, 3.0, 3.5, 4.0, 4.5, 5.0])
    }

    /// The paper's generation-rate sweep.
    pub fn paper_gen_rates() -> Self {
        SweepAxis::GenInterval(
            (0..8)
                .map(|i| (10.0 + 5.0 * i as f64, 15.0 + 5.0 * i as f64))
                .collect(),
        )
    }

    /// The standard churn sweep used by the delivery-vs-churn table:
    /// from no faults to four crashes per node-hour.
    pub fn churn_rates() -> Self {
        SweepAxis::CrashRate(vec![0.0, 0.5, 1.0, 2.0, 4.0])
    }

    /// The Fig. 4 Taylor-depth ablation: exact Eq. 10 as the reference
    /// point, then truncations from crude to near-exact.
    pub fn paper_taylor() -> Self {
        SweepAxis::TaylorTerms(vec![None, Some(1), Some(2), Some(4), Some(8), Some(16)])
    }

    /// The standard congestion-adaptation sweep: from aggressive
    /// throttling at half-full buffers to the permissive limit (a
    /// threshold of 1.0 never triggers, giving the un-throttled
    /// reference point on the same axis).
    pub fn occupancy_thresholds() -> Self {
        SweepAxis::OccupancyThreshold(vec![0.5, 0.6, 0.7, 0.8, 0.9, 1.0])
    }

    /// Number of sweep points.
    pub fn len(&self) -> usize {
        match self {
            SweepAxis::InitialCopies(v) => v.len(),
            SweepAxis::BufferMb(v) => v.len(),
            SweepAxis::GenInterval(v) => v.len(),
            SweepAxis::CrashRate(v) => v.len(),
            SweepAxis::TaylorTerms(v) => v.len(),
            SweepAxis::OccupancyThreshold(v) => v.len(),
        }
    }

    /// True when the axis has no points.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Axis display name.
    pub fn name(&self) -> &'static str {
        match self {
            SweepAxis::InitialCopies(_) => "initial copies L",
            SweepAxis::BufferMb(_) => "buffer size (MB)",
            SweepAxis::GenInterval(_) => "generation interval (s)",
            SweepAxis::CrashRate(_) => "crash rate (/node-hour)",
            SweepAxis::TaylorTerms(_) => "Taylor terms k (0 = exact)",
            SweepAxis::OccupancyThreshold(_) => "occupancy threshold",
        }
    }

    /// Label of point `i`.
    pub fn label(&self, i: usize) -> String {
        match self {
            SweepAxis::InitialCopies(v) => v[i].to_string(),
            SweepAxis::BufferMb(v) => format!("{}", v[i]),
            SweepAxis::GenInterval(v) => format!("{}-{}", v[i].0, v[i].1),
            SweepAxis::CrashRate(v) => format!("{}", v[i]),
            SweepAxis::TaylorTerms(v) => match v[i] {
                None => "exact".to_string(),
                Some(k) => format!("k={k}"),
            },
            SweepAxis::OccupancyThreshold(v) => format!("{}", v[i]),
        }
    }

    /// Numeric x value of point `i` (for plotting).
    pub fn value(&self, i: usize) -> f64 {
        match self {
            SweepAxis::InitialCopies(v) => v[i] as f64,
            SweepAxis::BufferMb(v) => v[i],
            SweepAxis::GenInterval(v) => (v[i].0 + v[i].1) / 2.0,
            SweepAxis::CrashRate(v) => v[i],
            // Exact mode plots at 0 (a k-axis has no natural slot for
            // it; the label carries the distinction).
            SweepAxis::TaylorTerms(v) => v[i].map_or(0.0, |k| k as f64),
            SweepAxis::OccupancyThreshold(v) => v[i],
        }
    }

    /// Applies point `i` to a scenario. Called *after* the job's policy
    /// is assigned (see [`materialize_jobs`]), so policy-rewriting axes
    /// ([`SweepAxis::TaylorTerms`]) see the final policy.
    pub fn apply(&self, cfg: &mut ScenarioConfig, i: usize) {
        match self {
            SweepAxis::InitialCopies(v) => cfg.initial_copies = v[i],
            SweepAxis::BufferMb(v) => cfg.buffer_capacity = Bytes::from_mb(v[i]),
            SweepAxis::GenInterval(v) => cfg.gen_interval = v[i],
            SweepAxis::CrashRate(v) => {
                cfg.faults.crash_rate_per_hour = v[i];
                if v[i] > 0.0 && cfg.faults.reboot_secs <= 0.0 {
                    cfg.faults.reboot_secs = 60.0;
                }
            }
            SweepAxis::TaylorTerms(v) => {
                let terms = v[i].map(|k| k as usize);
                cfg.policy = match cfg.policy {
                    // The paper preset keeps its online-λ estimation and
                    // gossip settings (`SdsrpConfig::paper`), only the
                    // priority form changes.
                    PolicyKind::Sdsrp => PolicyKind::SdsrpCustom {
                        lambda: sdsrp_core::LambdaMode::Online {
                            prior: 1.0 / 2000.0,
                            min_samples: 5,
                        },
                        taylor_terms: terms,
                        reject_dropped: true,
                        gossip: true,
                    },
                    PolicyKind::SdsrpCustom {
                        lambda,
                        reject_dropped,
                        gossip,
                        ..
                    } => PolicyKind::SdsrpCustom {
                        lambda,
                        taylor_terms: terms,
                        reject_dropped,
                        gossip,
                    },
                    other => other,
                };
            }
            SweepAxis::OccupancyThreshold(v) => {
                cfg.policy = match cfg.policy {
                    PolicyKind::OccupancyGate { .. } => {
                        PolicyKind::OccupancyGate { threshold: v[i] }
                    }
                    PolicyKind::TieredRetention { tiers, .. } => PolicyKind::TieredRetention {
                        tiers,
                        threshold: v[i],
                    },
                    other => other,
                };
            }
        }
    }
}

/// A full sweep specification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepSpec {
    /// The scenario template (its `policy`, `seed` and the swept field
    /// are overwritten per run).
    pub base: ScenarioConfig,
    /// The x-axis.
    pub axis: SweepAxis,
    /// The strategies to compare.
    pub policies: Vec<PolicyKind>,
    /// Seeds to average over.
    pub seeds: Vec<u64>,
    /// Attach a `dtn-validate` `Validator` to every run and fold the
    /// violation counts into the cells.
    #[serde(default)]
    pub validate: bool,
}

/// Averaged metrics for one `(axis point, policy)` cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepCell {
    /// Axis point index.
    pub axis_index: usize,
    /// Axis point label (e.g. "2.5" or "25-35").
    pub axis_label: String,
    /// Numeric axis value for plotting.
    pub axis_value: f64,
    /// Policy legend label.
    pub policy: String,
    /// Mean delivery ratio across seeds.
    pub delivery_ratio: f64,
    /// Std-dev of delivery ratio across seeds (0 for one seed).
    pub delivery_ratio_std: f64,
    /// Mean average hopcount.
    pub avg_hopcount: f64,
    /// Mean overhead ratio.
    pub overhead_ratio: f64,
    /// Mean delivery latency in seconds over the cell's runs that
    /// delivered at least one message; `None` when no run did (a cell
    /// with zero deliveries has no latency, not a zero one). Serialises
    /// as `null`; legacy checkpoints carrying the old `0.0` sentinel
    /// deserialize as `Some(0.0)`.
    pub avg_latency: Option<f64>,
    /// Mean generated messages per run.
    pub created: f64,
    /// Seeds aggregated (fewer than requested if some runs panicked).
    pub runs: usize,
    /// Total invariant violations across the cell's runs (0 unless
    /// [`SweepSpec::validate`] was set).
    #[serde(default)]
    pub violations: u64,
    /// Compact fault-plan label of the cell's resolved scenario
    /// (`"none"` for fault-free cells; pre-fault checkpoints
    /// deserialize to an empty string).
    #[serde(default)]
    pub faults: String,
}

/// Live progress of a sweep, reported once per finished run (panicked
/// runs included).
#[derive(Debug, Clone, PartialEq)]
pub struct SweepProgress {
    /// Runs finished so far (this one included; restored checkpoint
    /// runs are pre-counted).
    pub completed: usize,
    /// Total runs in the sweep.
    pub total: usize,
    /// Axis label of the finished run.
    pub axis_label: String,
    /// Policy legend label of the finished run.
    pub policy: String,
}

/// One job for the generic cell runner: a label pair for progress
/// reporting plus the fully-resolved scenario.
#[derive(Debug, Clone)]
pub struct CellJob {
    /// Axis label (sweeps) or scenario name (fuzzing).
    pub label: String,
    /// Policy legend label.
    pub policy: String,
    /// The exact configuration to run.
    pub cfg: ScenarioConfig,
}

/// The scalar per-run metrics a sweep aggregates. Stored in checkpoint
/// records as raw `f64`s — JSON rendering is shortest-roundtrip, so a
/// restored run aggregates bit-identically to a live one.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellMetrics {
    /// Delivery ratio.
    pub delivery_ratio: f64,
    /// Average hopcount over first deliveries.
    pub avg_hopcount: f64,
    /// Overhead ratio.
    pub overhead_ratio: f64,
    /// Average delivery latency in seconds; `None` when the run
    /// delivered nothing.
    pub avg_latency: Option<f64>,
    /// Messages generated after warm-up.
    pub created: f64,
}

impl CellMetrics {
    /// Extracts the aggregation inputs from a run's report.
    pub fn from_report(report: &Report) -> Self {
        CellMetrics {
            delivery_ratio: report.delivery_ratio(),
            avg_hopcount: report.avg_hopcount(),
            overhead_ratio: report.overhead_ratio(),
            avg_latency: report.avg_latency(),
            created: report.created() as f64,
        }
    }
}

/// One finished job — the checkpoint JSONL record.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CellRun {
    /// Position in the materialised job list.
    pub index: usize,
    /// FNV-1a hash of the job's canonical config JSON — the resume key.
    pub config_hash: String,
    /// RNG seed of the run.
    pub seed: u64,
    /// Scalar metrics the sweep aggregates.
    pub metrics: CellMetrics,
    /// Integer digest of the run, for bit-identical resume checks.
    pub fingerprint: ReportFingerprint,
    /// Invariant violations observed (0 when validation is off).
    pub violations: u64,
    /// Wall-clock execution time of the run, seconds. Observational
    /// metadata: a restored run keeps the duration it was recorded
    /// with, the fleet coordinator uses it for longest-job-first
    /// scheduling, and it is *excluded* from equality so resumed
    /// outputs still compare bit-identical to uninterrupted ones.
    /// Pre-duration checkpoints deserialize to `0.0`.
    #[serde(default)]
    pub duration_secs: f64,
}

// Manual equality: everything deterministic, minus the wall clock.
impl PartialEq for CellRun {
    fn eq(&self, other: &Self) -> bool {
        self.index == other.index
            && self.config_hash == other.config_hash
            && self.seed == other.seed
            && self.metrics == other.metrics
            && self.fingerprint == other.fingerprint
            && self.violations == other.violations
    }
}

/// A job that panicked: everything needed to triage and replay it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellError {
    /// Position in the materialised job list.
    pub index: usize,
    /// FNV-1a hash of the job's canonical config JSON.
    pub config_hash: String,
    /// Axis label (sweeps) or scenario name (fuzzing).
    pub label: String,
    /// Policy legend label.
    pub policy: String,
    /// RNG seed of the failed run.
    pub seed: u64,
    /// The panic payload, stringified.
    pub panic: String,
    /// The canonical config JSON of the failed job, embedded so the
    /// cell can be replayed directly (`dtn-scenario --config`).
    pub config: String,
}

impl std::fmt::Display for CellError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cell #{} ({} @ {}, seed {}, config {}) panicked: {}",
            self.index, self.policy, self.label, self.seed, self.config_hash, self.panic
        )
    }
}

/// Checkpoint configuration for a hardened run.
#[derive(Debug, Clone)]
pub struct SweepCheckpoint {
    /// JSONL file finished cells stream to (one [`CellRun`] per line).
    pub path: PathBuf,
    /// Restore completed cells from `path` instead of truncating it.
    pub resume: bool,
}

/// A checkpoint I/O failure, recorded in the output instead of aborting
/// the sweep: the run completes uncheckpointed.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointError {
    /// Path of the checkpoint file that failed.
    pub path: String,
    /// The underlying I/O error, stringified.
    pub error: String,
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "checkpoint {} unavailable ({}); sweep continued uncheckpointed",
            self.path, self.error
        )
    }
}

/// A streaming checkpoint writer that degrades instead of panicking: the
/// first write failure disables further appends and is surfaced as a
/// [`CheckpointError`].
pub struct CheckpointSink {
    path: PathBuf,
    state: Mutex<SinkState>,
}

struct SinkState {
    file: Option<File>,
    error: Option<CheckpointError>,
}

impl CheckpointSink {
    /// Appends one finished run, flushing per cell so the file survives
    /// a kill right up to the last finished job. A write failure
    /// disables the sink (the sweep continues uncheckpointed).
    pub fn append(&self, run: &CellRun) {
        let line = serde_json::to_string(run).expect("cell run serialises");
        let mut state = self.state.lock();
        let Some(file) = state.file.as_mut() else {
            return;
        };
        let outcome = writeln!(file, "{line}").and_then(|()| file.flush());
        if let Err(e) = outcome {
            state.file = None;
            state.error = Some(CheckpointError {
                path: self.path.display().to_string(),
                error: e.to_string(),
            });
        }
    }

    /// The first write error, if appending ever failed.
    pub fn error(&self) -> Option<CheckpointError> {
        self.state.lock().error.clone()
    }
}

/// Result of [`open_checkpoint`]: restored per-job runs plus a live
/// append sink (absent when the file could not be opened or rewritten).
pub struct CheckpointRestore {
    /// Append sink for newly finished runs (`None` after an open or
    /// rewrite failure — the sweep still runs, uncheckpointed).
    pub sink: Option<CheckpointSink>,
    /// The open/rewrite failure, if any.
    pub error: Option<CheckpointError>,
    /// Restored runs, indexed like the job list (reindexed to it).
    pub restored: Vec<Option<CellRun>>,
}

/// Restores finished cells for a job list (identified by its canonical
/// config hashes) from a checkpoint file plus any number of extra
/// partial sources (e.g. per-worker shard checkpoints left behind by a
/// killed fleet), then rewrites the main file from the parsed entries
/// and keeps it open for appending.
///
/// The rewrite repairs a torn final line a mid-write kill may have left
/// behind in *any* source, folds every source into the one main file
/// (job-matched entries first, in job order, then leftover entries from
/// other job sets in hash order so the rewrite is deterministic), and
/// guarantees the file ends with a newline before appends begin.
/// Entries for the same config hash are deduplicated (first source
/// wins; the main checkpoint is read first).
///
/// I/O failures never panic: restored entries are still returned (so
/// resume works even from an unwritable file) and the error is recorded
/// in [`CheckpointRestore::error`].
pub fn open_checkpoint(
    ck: &SweepCheckpoint,
    hashes: &[String],
    merge_sources: &[PathBuf],
) -> CheckpointRestore {
    let mut prior: HashMap<String, CellRun> = HashMap::new();
    if ck.resume {
        prior = load_checkpoint(&ck.path);
        for source in merge_sources {
            for (hash, run) in load_checkpoint(source) {
                prior.entry(hash).or_insert(run);
            }
        }
    }
    let mut restored: Vec<Option<CellRun>> = vec![None; hashes.len()];
    for (i, hash) in hashes.iter().enumerate() {
        if let Some(mut run) = prior.remove(hash) {
            run.index = i;
            restored[i] = Some(run);
        }
    }

    let mut file = match OpenOptions::new()
        .create(true)
        .write(true)
        .truncate(true)
        .open(&ck.path)
    {
        Ok(file) => file,
        Err(e) => {
            return CheckpointRestore {
                sink: None,
                error: Some(CheckpointError {
                    path: ck.path.display().to_string(),
                    error: e.to_string(),
                }),
                restored,
            };
        }
    };
    let rewrite = (|| -> std::io::Result<()> {
        for run in restored.iter().flatten() {
            let line = serde_json::to_string(run).expect("cell run serialises");
            writeln!(file, "{line}")?;
        }
        let mut leftovers: Vec<&CellRun> = prior.values().collect();
        leftovers.sort_by(|a, b| a.config_hash.cmp(&b.config_hash));
        for run in leftovers {
            let line = serde_json::to_string(run).expect("cell run serialises");
            writeln!(file, "{line}")?;
        }
        file.flush()
    })();
    match rewrite {
        Ok(()) => CheckpointRestore {
            sink: Some(CheckpointSink {
                path: ck.path.clone(),
                state: Mutex::new(SinkState {
                    file: Some(file),
                    error: None,
                }),
            }),
            error: None,
            restored,
        },
        Err(e) => CheckpointRestore {
            sink: None,
            error: Some(CheckpointError {
                path: ck.path.display().to_string(),
                error: e.to_string(),
            }),
            restored,
        },
    }
}

/// Options for [`run_cells`] / [`run_sweep_hardened`].
#[derive(Default)]
pub struct SweepOptions<'a> {
    /// Worker threads; 0 uses the available parallelism.
    pub threads: usize,
    /// Attach a `dtn-validate` `Validator` to every run.
    pub validate: bool,
    /// Stream finished cells to (and optionally resume from) a JSONL
    /// checkpoint file.
    pub checkpoint: Option<SweepCheckpoint>,
    /// Per-run progress callback (called from worker threads).
    pub progress: Option<&'a (dyn Fn(SweepProgress) + Sync)>,
    /// Structured lifecycle-event callback (called from worker
    /// threads): completions, failures, skips, resumes.
    pub events: Option<&'a (dyn Fn(&SweepEvent) + Sync)>,
    /// Intra-run world threads per job (the parallel tick phases);
    /// 0 or 1 keeps every world serial. Orthogonal to `threads`, which
    /// fans *jobs* out across workers. Fingerprints are thread-count
    /// invariant, so this is purely a wall-clock knob.
    pub world_threads: usize,
}

/// Result of a hardened cell-list run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CellsOutput {
    /// Per-job outcome, job-ordered; `None` marks a panicked job (its
    /// [`CellError`] is in `errors`).
    pub runs: Vec<Option<CellRun>>,
    /// The panicked jobs.
    pub errors: Vec<CellError>,
    /// Event totals folded over all successful runs (restored ones
    /// included, so totals match an uninterrupted run).
    pub totals: EventTotals,
    /// Total invariant violations across all successful runs.
    pub violations: u64,
    /// Jobs restored from the checkpoint instead of executed.
    pub resumed: usize,
    /// Jobs executed in this invocation.
    pub executed: usize,
    /// Set when the checkpoint file could not be opened or written; the
    /// run completed, uncheckpointed from that point on.
    pub checkpoint_error: Option<CheckpointError>,
}

/// Result of a hardened sweep.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SweepOutput {
    /// One aggregated cell per `(axis point, policy)`, axis-major then
    /// policy — always complete, even when some runs panicked.
    pub cells: Vec<SweepCell>,
    /// The panicked runs, if any.
    pub errors: Vec<CellError>,
    /// Event totals folded over all successful runs.
    pub totals: EventTotals,
    /// Total invariant violations across all runs.
    pub violations: u64,
    /// Runs restored from the checkpoint instead of executed.
    pub resumed: usize,
    /// Runs executed in this invocation.
    pub executed: usize,
    /// Per-run records, job-ordered (`None` marks a panicked run).
    pub runs: Vec<Option<CellRun>>,
    /// Set when the checkpoint file could not be opened or written; the
    /// sweep completed, uncheckpointed from that point on.
    pub checkpoint_error: Option<CheckpointError>,
}

/// Runs the sweep on `threads` worker threads (pass 0 to use the
/// available parallelism). Returns one cell per `(axis point, policy)`,
/// ordered axis-major then policy.
///
/// This is the *strict* legacy entry point: any panicking run aborts
/// the whole sweep (differential harnesses and golden tests rely on
/// all-or-nothing results). Use [`run_sweep_observed`] or
/// [`run_sweep_hardened`] for fault-tolerant behaviour.
///
/// # Example
///
/// A miniature Fig. 8-style comparison — two initial-copy points, two
/// policies, one seed — produces one [`SweepCell`] per
/// `(axis point, policy)` pair:
///
/// ```
/// use dtn_sim::config::{presets, PolicyKind};
/// use dtn_sim::sweep::{run_sweep, SweepAxis, SweepSpec};
///
/// let mut base = presets::smoke();
/// base.n_nodes = 8;
/// base.duration_secs = 120.0;
/// let spec = SweepSpec {
///     base,
///     axis: SweepAxis::InitialCopies(vec![4, 8]),
///     policies: vec![PolicyKind::Fifo, PolicyKind::Sdsrp],
///     seeds: vec![1],
///     validate: false,
/// };
/// let cells = run_sweep(&spec, 1);
/// assert_eq!(cells.len(), 4); // 2 axis points x 2 policies
/// assert!(cells
///     .iter()
///     .all(|c| (0.0..=1.0).contains(&c.delivery_ratio)));
/// ```
pub fn run_sweep(spec: &SweepSpec, threads: usize) -> Vec<SweepCell> {
    let out = run_sweep_observed(spec, threads, &|_| {});
    if let Some(err) = out.errors.first() {
        panic!("sweep worker panicked: {err}");
    }
    out.cells
}

/// [`run_sweep`] hardened: every run executes under `catch_unwind`, a
/// panicking cell becomes a [`CellError`] in the output, every run
/// carries a counting-only recorder whose event totals are folded into
/// the returned [`SweepOutput`], and `observe` is called (from worker
/// threads) after each finished run.
pub fn run_sweep_observed(
    spec: &SweepSpec,
    threads: usize,
    observe: &(dyn Fn(SweepProgress) + Sync),
) -> SweepOutput {
    run_sweep_hardened(
        spec,
        &SweepOptions {
            threads,
            validate: spec.validate,
            progress: Some(observe),
            ..SweepOptions::default()
        },
    )
}

/// The fully-hardened sweep runner: panic isolation, optional
/// per-cell validation ([`SweepSpec::validate`] or
/// [`SweepOptions::validate`]) and optional checkpoint/resume.
pub fn run_sweep_hardened(spec: &SweepSpec, opts: &SweepOptions<'_>) -> SweepOutput {
    let jobs = materialize_jobs(spec);
    let out = run_cells(
        jobs,
        &SweepOptions {
            threads: opts.threads,
            validate: opts.validate || spec.validate,
            checkpoint: opts.checkpoint.clone(),
            progress: opts.progress,
            events: opts.events,
            world_threads: opts.world_threads,
        },
    );
    aggregate_sweep(spec, out)
}

/// Materialises a spec's exact job list: `(axis i, policy j, seed)` ->
/// fully-resolved config, axis-major, then policy, then seed — cell
/// `(ai, pi)` owns jobs `[ (ai*P + pi)*S , +S )`. This is the canonical
/// ordering every runner (in-process and fleet) shards and aggregates
/// by.
///
/// # Panics
/// Panics if the axis, policy list or seed list is empty.
pub fn materialize_jobs(spec: &SweepSpec) -> Vec<CellJob> {
    assert!(!spec.axis.is_empty(), "sweep axis has no points");
    assert!(!spec.policies.is_empty(), "sweep needs at least one policy");
    assert!(!spec.seeds.is_empty(), "sweep needs at least one seed");

    let mut jobs = Vec::new();
    for ai in 0..spec.axis.len() {
        for policy in &spec.policies {
            for &seed in &spec.seeds {
                let mut cfg = spec.base.clone();
                cfg.policy = *policy;
                cfg.seed = seed;
                // Axis after policy: policy-rewriting axes (TaylorTerms)
                // must see the job's final policy; no axis reads the
                // seed, and none of the field-setting axes is affected
                // by the order.
                spec.axis.apply(&mut cfg, ai);
                if matches!(policy, PolicyKind::SdsrpOracle { .. }) {
                    cfg.oracle = true;
                }
                jobs.push(CellJob {
                    label: spec.axis.label(ai),
                    policy: policy.label().to_string(),
                    cfg,
                });
            }
        }
    }
    jobs
}

/// Folds the per-job outcomes of a [`materialize_jobs`] job list back
/// into aggregated `(axis point, policy)` cells. Panicked runs simply
/// contribute nothing: their cell still appears, with fewer `runs`.
pub fn aggregate_sweep(spec: &SweepSpec, out: CellsOutput) -> SweepOutput {
    let n_seeds = spec.seeds.len();
    let n_policies = spec.policies.len();
    let mut agg: Vec<Vec<CellAgg>> = vec![vec![CellAgg::default(); n_policies]; spec.axis.len()];
    for run in out.runs.iter().flatten() {
        let ai = run.index / (n_policies * n_seeds);
        let pi = (run.index / n_seeds) % n_policies;
        let a = &mut agg[ai][pi];
        a.delivery.push(run.metrics.delivery_ratio);
        a.hops.push(run.metrics.avg_hopcount);
        a.overhead.push(run.metrics.overhead_ratio);
        // Zero-delivery runs contribute no latency sample: averaging in
        // the old `0.0` sentinel would drag the cell mean toward zero.
        if let Some(lat) = run.metrics.avg_latency {
            a.latency.push(lat);
        }
        a.created.push(run.metrics.created);
        a.violations += run.violations;
    }

    let mut cells = Vec::with_capacity(spec.axis.len() * n_policies);
    for (ai, row) in agg.into_iter().enumerate() {
        let faults_label = {
            let mut cfg = spec.base.clone();
            spec.axis.apply(&mut cfg, ai);
            cfg.faults.label()
        };
        for (pi, a) in row.into_iter().enumerate() {
            cells.push(SweepCell {
                axis_index: ai,
                axis_label: spec.axis.label(ai),
                axis_value: spec.axis.value(ai),
                policy: spec.policies[pi].label().to_string(),
                delivery_ratio: a.delivery.mean().unwrap_or(0.0),
                delivery_ratio_std: a.delivery.std_dev().unwrap_or(0.0),
                avg_hopcount: a.hops.mean().unwrap_or(0.0),
                overhead_ratio: a.overhead.mean().unwrap_or(0.0),
                avg_latency: a.latency.mean(),
                created: a.created.mean().unwrap_or(0.0),
                runs: a.delivery.count() as usize,
                violations: a.violations,
                faults: faults_label.clone(),
            });
        }
    }
    SweepOutput {
        cells,
        errors: out.errors,
        totals: out.totals,
        violations: out.violations,
        resumed: out.resumed,
        executed: out.executed,
        runs: out.runs,
        checkpoint_error: out.checkpoint_error,
    }
}

/// Runs an arbitrary list of fully-resolved scenarios (the generic core
/// behind [`run_sweep_hardened`] and the `dtn-fuzz` bin) with panic
/// isolation and optional validation + checkpoint/resume.
pub fn run_cells(jobs: Vec<CellJob>, opts: &SweepOptions<'_>) -> CellsOutput {
    let total = jobs.len();
    // Canonical config JSON per job: the replay payload, and (hashed)
    // the checkpoint resume key.
    let configs: Vec<String> = jobs
        .iter()
        .map(|j| serde_json::to_string(&j.cfg).expect("config serialises"))
        .collect();
    let hashes: Vec<String> = configs.iter().map(|c| hash_config_json(c)).collect();

    let mut slots: Vec<Option<Result<CellRun, CellError>>> = (0..total).map(|_| None).collect();
    let mut totals = EventTotals::default();
    let mut resumed = 0usize;

    // Restore finished cells from the checkpoint, then rewrite it from
    // the parsed entries and keep the sink for appending (torn-tail
    // repair and degradation semantics live in `open_checkpoint`).
    let mut checkpoint_error = None;
    let sink: Option<CheckpointSink> = match &opts.checkpoint {
        Some(ck) => {
            let restore = open_checkpoint(ck, &hashes, &[]);
            for (i, run) in restore.restored.into_iter().enumerate() {
                let Some(run) = run else { continue };
                totals.absorb(&run.fingerprint.events);
                if let Some(ev) = opts.events {
                    ev(&SweepEvent::CellSkipped {
                        index: i as u64,
                        total: total as u64,
                        config_hash: run.config_hash.clone(),
                        label: jobs[i].label.clone(),
                        seed: jobs[i].cfg.seed,
                    });
                }
                slots[i] = Some(Ok(run));
                resumed += 1;
            }
            if ck.resume {
                if let Some(ev) = opts.events {
                    ev(&SweepEvent::CheckpointResumed {
                        path: ck.path.display().to_string(),
                        cells: resumed as u64,
                    });
                }
            }
            checkpoint_error = restore.error;
            restore.sink
        }
        None => None,
    };

    let threads = if opts.threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    } else {
        opts.threads
    };
    let pending = total - resumed;
    let cursor = AtomicUsize::new(0);
    let completed = AtomicUsize::new(resumed);
    let results: Mutex<Vec<Option<Result<CellRun, CellError>>>> = Mutex::new(slots);
    let shared_totals: Mutex<EventTotals> = Mutex::new(totals);

    crossbeam::scope(|scope| {
        for _ in 0..threads.min(pending.max(1)) {
            scope.spawn(|_| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= total {
                    break;
                }
                if results.lock()[i].is_some() {
                    continue; // restored from the checkpoint
                }
                let job = &jobs[i];
                // Panic isolation: a failing cell must not take down
                // the sweep (nor this worker, which keeps pulling
                // jobs). The captured state is only read on success.
                let started = std::time::Instant::now();
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    execute_job_with(&job.cfg, opts.validate, opts.world_threads)
                }));
                let slot = match outcome {
                    Ok((metrics, fingerprint, violations)) => {
                        let run = CellRun {
                            index: i,
                            config_hash: hashes[i].clone(),
                            seed: job.cfg.seed,
                            metrics,
                            fingerprint,
                            violations,
                            duration_secs: started.elapsed().as_secs_f64(),
                        };
                        if let Some(sink) = &sink {
                            sink.append(&run);
                        }
                        shared_totals.lock().absorb(&run.fingerprint.events);
                        if let Some(ev) = opts.events {
                            ev(&SweepEvent::CellCompleted {
                                index: i as u64,
                                total: total as u64,
                                config_hash: run.config_hash.clone(),
                                label: job.label.clone(),
                                seed: run.seed,
                                violations: run.violations,
                                duration_ms: (run.duration_secs * 1_000.0) as u64,
                            });
                        }
                        Ok(run)
                    }
                    Err(payload) => {
                        let err = CellError {
                            index: i,
                            config_hash: hashes[i].clone(),
                            label: job.label.clone(),
                            policy: job.policy.clone(),
                            seed: job.cfg.seed,
                            panic: panic_message(payload.as_ref()),
                            config: configs[i].clone(),
                        };
                        if let Some(ev) = opts.events {
                            ev(&SweepEvent::CellFailed {
                                index: i as u64,
                                total: total as u64,
                                config_hash: err.config_hash.clone(),
                                label: err.label.clone(),
                                seed: err.seed,
                                panic: err.panic.clone(),
                            });
                        }
                        Err(err)
                    }
                };
                results.lock()[i] = Some(slot);
                let done = completed.fetch_add(1, Ordering::Relaxed) + 1;
                if let Some(progress) = opts.progress {
                    progress(SweepProgress {
                        completed: done,
                        total,
                        axis_label: job.label.clone(),
                        policy: job.policy.clone(),
                    });
                }
            });
        }
    })
    // The workers themselves cannot panic (jobs run under
    // catch_unwind); only callback panics propagate here.
    .expect("sweep observer panicked");

    let mut runs = Vec::with_capacity(total);
    let mut errors = Vec::new();
    let mut violations = 0u64;
    for slot in results.into_inner() {
        match slot.expect("job not executed") {
            Ok(run) => {
                violations += run.violations;
                runs.push(Some(run));
            }
            Err(err) => {
                errors.push(err);
                runs.push(None);
            }
        }
    }
    let checkpoint_error = checkpoint_error.or_else(|| sink.as_ref().and_then(|s| s.error()));
    if let (Some(err), Some(ev)) = (&checkpoint_error, opts.events) {
        ev(&SweepEvent::CheckpointFailed {
            path: err.path.clone(),
            error: err.error.clone(),
        });
    }
    CellsOutput {
        runs,
        errors,
        totals: shared_totals.into_inner(),
        violations,
        resumed,
        executed: total - resumed,
        checkpoint_error,
    }
}

/// Builds and runs one world — the single shard-able unit of work every
/// runner (in-process threads, `dtn-fleet` workers) executes. Returns
/// the aggregation inputs, the run's integer fingerprint, and the
/// invariant-violation count.
pub fn execute_job(cfg: &ScenarioConfig, validate: bool) -> (CellMetrics, ReportFingerprint, u64) {
    execute_job_with(cfg, validate, 1)
}

/// [`execute_job`] with an explicit intra-run world thread count (the
/// parallel tick phases). Results are bit-identical at any
/// `world_threads` — the knob only trades wall-clock for cores.
pub fn execute_job_with(
    cfg: &ScenarioConfig,
    validate: bool,
    world_threads: usize,
) -> (CellMetrics, ReportFingerprint, u64) {
    let mut world = World::build(cfg);
    world.set_threads(world_threads.max(1));
    // Counting-only telemetry: no ring, no sink.
    world.attach_recorder(Recorder::enabled(0));
    if validate {
        world.enable_validation(dtn_validate::ValidateConfig::default());
        let (report, validation, recorder) = world.run_validated();
        let fp = crate::replay::fingerprint(&report, recorder.totals());
        (
            CellMetrics::from_report(&report),
            fp,
            validation.violation_count,
        )
    } else {
        let (report, recorder) = world.run_with_recorder();
        let fp = crate::replay::fingerprint(&report, recorder.totals());
        (CellMetrics::from_report(&report), fp, 0)
    }
}

/// Stringifies a panic payload (the two standard payload types, then a
/// generic fallback).
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Loads a checkpoint file into a `config hash -> CellRun` map. Lines
/// that fail to parse are skipped: a process killed mid-write leaves a
/// truncated tail, which resuming must tolerate (that cell simply
/// re-runs). A missing file is an empty checkpoint.
pub fn load_checkpoint(path: &Path) -> HashMap<String, CellRun> {
    let mut map = HashMap::new();
    let Ok(body) = std::fs::read_to_string(path) else {
        return map;
    };
    for line in body.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Ok(run) = serde_json::from_str::<CellRun>(line) {
            map.insert(run.config_hash.clone(), run);
        }
    }
    map
}

#[derive(Clone, Default)]
struct CellAgg {
    delivery: OnlineStats,
    hops: OnlineStats,
    overhead: OnlineStats,
    latency: OnlineStats,
    created: OnlineStats,
    violations: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::presets;

    fn quick_spec() -> SweepSpec {
        let mut base = presets::smoke();
        base.duration_secs = 600.0;
        base.n_nodes = 20;
        SweepSpec {
            base,
            axis: SweepAxis::InitialCopies(vec![8, 16]),
            policies: vec![PolicyKind::Fifo, PolicyKind::Sdsrp],
            seeds: vec![1, 2],
            validate: false,
        }
    }

    #[test]
    fn axis_accessors() {
        let a = SweepAxis::paper_copies();
        assert_eq!(a.len(), 13);
        assert_eq!(a.label(0), "16");
        assert_eq!(a.value(12), 64.0);
        let b = SweepAxis::paper_buffers();
        assert_eq!(b.len(), 7);
        assert_eq!(b.label(1), "2.5");
        let g = SweepAxis::paper_gen_rates();
        assert_eq!(g.len(), 8);
        assert_eq!(g.label(0), "10-15");
        assert_eq!(g.label(7), "45-50");
        assert_eq!(g.value(0), 12.5);
        assert!(!a.is_empty());
    }

    #[test]
    fn axis_apply() {
        let mut cfg = presets::smoke();
        SweepAxis::paper_copies().apply(&mut cfg, 2);
        assert_eq!(cfg.initial_copies, 24);
        SweepAxis::paper_buffers().apply(&mut cfg, 0);
        assert_eq!(cfg.buffer_capacity, Bytes::from_mb(2.0));
        SweepAxis::paper_gen_rates().apply(&mut cfg, 3);
        assert_eq!(cfg.gen_interval, (25.0, 30.0));
    }

    #[test]
    fn sweep_runs_and_aggregates() {
        let spec = quick_spec();
        let cells = run_sweep(&spec, 4);
        assert_eq!(cells.len(), 2 * 2);
        for c in &cells {
            assert_eq!(c.runs, 2);
            assert!(c.created > 0.0);
            assert!((0.0..=1.0).contains(&c.delivery_ratio));
            assert_eq!(c.violations, 0);
        }
        // Ordering: axis-major, then policy.
        assert_eq!(cells[0].axis_label, "8");
        assert_eq!(cells[0].policy, "SprayAndWait");
        assert_eq!(cells[1].policy, "SDSRP");
        assert_eq!(cells[2].axis_label, "16");
    }

    #[test]
    fn sweep_is_deterministic_across_thread_counts() {
        let spec = quick_spec();
        let a = run_sweep(&spec, 1);
        let b = run_sweep(&spec, 8);
        assert_eq!(a, b);
    }

    #[test]
    fn observed_sweep_reports_progress_and_totals() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let spec = quick_spec();
        let seen = AtomicUsize::new(0);
        let max_completed = AtomicUsize::new(0);
        let out = run_sweep_observed(&spec, 2, &|p: SweepProgress| {
            seen.fetch_add(1, Ordering::Relaxed);
            max_completed.fetch_max(p.completed, Ordering::Relaxed);
            assert_eq!(p.total, 8); // 2 axis points x 2 policies x 2 seeds
            assert!(!p.axis_label.is_empty());
            assert!(!p.policy.is_empty());
        });
        assert_eq!(out.cells.len(), 4);
        assert_eq!(seen.load(Ordering::Relaxed), 8);
        assert_eq!(max_completed.load(Ordering::Relaxed), 8);
        assert!(out.errors.is_empty());
        assert_eq!(out.executed, 8);
        assert_eq!(out.resumed, 0);
        assert_eq!(out.runs.iter().flatten().count(), 8);
        // The aggregate totals reconcile with the aggregated reports:
        // every counted generation produced one MessageGenerated event.
        let created: f64 = out.cells.iter().map(|c| c.created * c.runs as f64).sum();
        assert_eq!(out.totals.generated, created.round() as u64);
        assert!(out.totals.contacts_up > 0);
    }

    #[test]
    fn panicking_cell_is_isolated_and_other_cells_unchanged() {
        // Axis point 1 asks for a negative buffer: every run at that
        // point fails `ScenarioConfig::validate` inside the worker.
        let clean = quick_spec();
        let mut poisoned = clean.clone();
        poisoned.axis = SweepAxis::InitialCopies(vec![8, 16, 0]);

        let good = run_sweep_observed(&clean, 2, &|_| {});
        let out = run_sweep_observed(&poisoned, 2, &|_| {});

        // Both seeds of both policies at the poisoned point failed,
        // as structured errors carrying the panic payload.
        assert_eq!(out.errors.len(), 4);
        for err in &out.errors {
            assert_eq!(err.label, "0");
            assert!(err.panic.contains("at least one copy"));
            assert_eq!(err.config_hash.len(), 16);
            assert!(err.config.contains("\"initial_copies\":0"));
            assert!(!err.to_string().is_empty());
        }
        // All healthy cells are returned, bit-identical to a sweep
        // that never contained the poisoned point.
        assert_eq!(out.cells.len(), 3 * 2);
        assert_eq!(&out.cells[..4], &good.cells[..]);
        // The poisoned cells still appear, with zero aggregated runs.
        for c in &out.cells[4..] {
            assert_eq!(c.runs, 0);
            assert_eq!(c.axis_label, "0");
        }
        assert_eq!(out.runs.iter().flatten().count(), 8);
    }

    #[test]
    #[should_panic(expected = "sweep worker panicked")]
    fn strict_run_sweep_still_aborts_on_cell_panic() {
        let mut spec = quick_spec();
        spec.axis = SweepAxis::InitialCopies(vec![8, 0]);
        let _ = run_sweep(&spec, 2);
    }

    #[test]
    fn validated_sweep_counts_violations() {
        let mut spec = quick_spec();
        spec.validate = true;
        let out = run_sweep_observed(&spec, 2, &|_| {});
        assert!(out.errors.is_empty());
        // A healthy simulator has zero violations; the count is folded
        // into every cell either way.
        assert_eq!(out.violations, 0);
        assert!(out.cells.iter().all(|c| c.violations == 0));
        assert!(out.runs.iter().flatten().all(|r| r.violations == 0));
    }

    #[test]
    #[should_panic(expected = "at least one policy")]
    fn empty_policies_rejected() {
        let mut spec = quick_spec();
        spec.policies.clear();
        let _ = run_sweep(&spec, 1);
    }

    #[test]
    fn bad_checkpoint_path_degrades_instead_of_aborting() {
        // A checkpoint path in a directory that does not exist used to
        // panic the whole sweep; now the sweep completes and surfaces a
        // structured CheckpointError.
        let spec = quick_spec();
        let bad = std::path::PathBuf::from("/nonexistent-dir-sdsrp/ck.jsonl");
        let opts = SweepOptions {
            checkpoint: Some(SweepCheckpoint {
                path: bad.clone(),
                resume: false,
            }),
            ..SweepOptions::default()
        };
        let out = run_sweep_hardened(&spec, &opts);
        assert!(out.errors.is_empty());
        assert_eq!(out.executed, 8);
        let err = out.checkpoint_error.expect("open failure recorded");
        assert_eq!(err.path, bad.display().to_string());
        assert!(!err.error.is_empty());
        assert!(err.to_string().contains("uncheckpointed"));
        // The degraded sweep still produced the same results as a
        // checkpoint-free run.
        let clean = run_sweep_observed(&spec, 2, &|_| {});
        assert_eq!(out.cells, clean.cells);
    }

    #[test]
    fn bad_checkpoint_path_emits_checkpoint_failed_event() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let spec = quick_spec();
        let seen = AtomicBool::new(false);
        let events = |ev: &SweepEvent| {
            if let SweepEvent::CheckpointFailed { path, error } = ev {
                assert!(path.contains("nonexistent"));
                assert!(!error.is_empty());
                seen.store(true, Ordering::Relaxed);
            }
        };
        let opts = SweepOptions {
            checkpoint: Some(SweepCheckpoint {
                path: "/nonexistent-dir-sdsrp/ck.jsonl".into(),
                resume: false,
            }),
            events: Some(&events),
            ..SweepOptions::default()
        };
        let _ = run_sweep_hardened(&spec, &opts);
        assert!(seen.load(Ordering::Relaxed));
    }

    #[test]
    fn cell_runs_record_wall_clock_durations() {
        let spec = quick_spec();
        let out = run_sweep_observed(&spec, 2, &|_| {});
        for run in out.runs.iter().flatten() {
            assert!(run.duration_secs > 0.0, "duration recorded");
        }
        // Durations are observational: two runs of the same cell are
        // equal even though their wall clocks differ.
        let again = run_sweep_observed(&spec, 1, &|_| {});
        assert_eq!(out.runs, again.runs);
        // ...and survive a JSON round trip (serde default tolerates
        // pre-duration checkpoints).
        let run = out.runs[0].clone().unwrap();
        let json = serde_json::to_string(&run).unwrap();
        assert!(json.contains("duration_secs"));
        let back: CellRun = serde_json::from_str(&json).unwrap();
        assert_eq!(back, run);
        assert_eq!(back.duration_secs, run.duration_secs);
    }

    #[test]
    fn completed_cell_events_carry_durations() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let spec = quick_spec();
        let with_duration = AtomicUsize::new(0);
        let events = |ev: &SweepEvent| {
            if let SweepEvent::CellCompleted { .. } = ev {
                with_duration.fetch_add(1, Ordering::Relaxed);
            }
        };
        let opts = SweepOptions {
            events: Some(&events),
            ..SweepOptions::default()
        };
        let out = run_sweep_hardened(&spec, &opts);
        assert_eq!(with_duration.load(Ordering::Relaxed), 8);
        assert!(out.errors.is_empty());
    }

    #[test]
    fn materialized_jobs_match_hardened_ordering() {
        let spec = quick_spec();
        let jobs = materialize_jobs(&spec);
        assert_eq!(jobs.len(), 8);
        // Axis-major, then policy, then seed.
        assert_eq!(jobs[0].label, "8");
        assert_eq!(jobs[0].policy, "SprayAndWait");
        assert_eq!(jobs[0].cfg.seed, 1);
        assert_eq!(jobs[1].cfg.seed, 2);
        assert_eq!(jobs[2].policy, "SDSRP");
        assert_eq!(jobs[4].label, "16");
        // Aggregating a run_cells output reproduces run_sweep exactly.
        let out = run_cells(jobs, &SweepOptions::default());
        let agg = aggregate_sweep(&spec, out);
        let direct = run_sweep_observed(&spec, 2, &|_| {});
        assert_eq!(agg.cells, direct.cells);
        assert_eq!(agg.runs, direct.runs);
        assert_eq!(agg.totals, direct.totals);
    }

    #[test]
    fn taylor_axis_rewrites_only_sdsrp_policies() {
        let a = SweepAxis::paper_taylor();
        assert_eq!(a.len(), 6);
        assert_eq!(a.label(0), "exact");
        assert_eq!(a.label(3), "k=4");
        assert_eq!(a.value(0), 0.0);
        assert_eq!(a.value(5), 16.0);
        assert_eq!(a.name(), "Taylor terms k (0 = exact)");

        // SDSRP becomes the paper-configured custom variant with the
        // point's truncation; non-SDSRP policies pass through intact.
        let mut cfg = presets::smoke();
        cfg.policy = PolicyKind::Sdsrp;
        a.apply(&mut cfg, 3);
        match cfg.policy {
            PolicyKind::SdsrpCustom {
                taylor_terms,
                reject_dropped,
                gossip,
                ..
            } => {
                assert_eq!(taylor_terms, Some(4));
                assert!(reject_dropped && gossip);
            }
            other => panic!("unexpected policy {other:?}"),
        }
        // Custom variants keep their λ/gossip settings.
        cfg.policy = PolicyKind::SdsrpCustom {
            lambda: sdsrp_core::LambdaMode::Oracle(1e-3),
            taylor_terms: Some(64),
            reject_dropped: false,
            gossip: false,
        };
        a.apply(&mut cfg, 0);
        assert_eq!(
            cfg.policy,
            PolicyKind::SdsrpCustom {
                lambda: sdsrp_core::LambdaMode::Oracle(1e-3),
                taylor_terms: None,
                reject_dropped: false,
                gossip: false,
            }
        );
        cfg.policy = PolicyKind::Fifo;
        a.apply(&mut cfg, 2);
        assert_eq!(cfg.policy, PolicyKind::Fifo);
        cfg.validate();

        // End to end: the ablation sweep runs and the exact point
        // reproduces the plain-SDSRP fingerprint (same config modulo
        // the equivalent policy encoding).
        let mut base = presets::smoke();
        base.duration_secs = 400.0;
        base.n_nodes = 16;
        let spec = SweepSpec {
            base,
            axis: SweepAxis::TaylorTerms(vec![None, Some(2)]),
            policies: vec![PolicyKind::Sdsrp],
            seeds: vec![7],
            validate: false,
        };
        let cells = run_sweep(&spec, 2);
        assert_eq!(cells.len(), 2);
        assert!(cells.iter().all(|c| c.runs == 1));
    }

    #[test]
    fn occupancy_axis_rewrites_only_congestion_policies() {
        let a = SweepAxis::occupancy_thresholds();
        assert_eq!(a.len(), 6);
        assert_eq!(a.name(), "occupancy threshold");
        assert_eq!(a.label(0), "0.5");
        assert_eq!(a.value(5), 1.0);

        // Both congestion-adaptive kinds pick up the point's threshold;
        // TieredRetention keeps its tier count.
        let mut cfg = presets::smoke();
        cfg.policy = PolicyKind::OccupancyGate { threshold: 0.8 };
        a.apply(&mut cfg, 0);
        assert_eq!(cfg.policy, PolicyKind::OccupancyGate { threshold: 0.5 });
        cfg.policy = PolicyKind::TieredRetention {
            tiers: 4,
            threshold: 0.9,
        };
        a.apply(&mut cfg, 2);
        assert_eq!(
            cfg.policy,
            PolicyKind::TieredRetention {
                tiers: 4,
                threshold: 0.7,
            }
        );
        // Non-congestion policies pass through intact (reference rows).
        cfg.policy = PolicyKind::Sdsrp;
        a.apply(&mut cfg, 1);
        assert_eq!(cfg.policy, PolicyKind::Sdsrp);
        cfg.validate();
    }

    #[test]
    fn crash_rate_axis_accessors_and_apply() {
        let a = SweepAxis::churn_rates();
        assert_eq!(a.len(), 5);
        assert_eq!(a.name(), "crash rate (/node-hour)");
        assert_eq!(a.label(1), "0.5");
        assert_eq!(a.value(4), 4.0);
        let mut cfg = presets::smoke();
        a.apply(&mut cfg, 0);
        assert!(cfg.faults.is_empty(), "rate 0 keeps the plan empty");
        a.apply(&mut cfg, 2);
        assert_eq!(cfg.faults.crash_rate_per_hour, 1.0);
        assert_eq!(cfg.faults.reboot_secs, 60.0, "unset down window defaults");
        cfg.validate();
        // An explicit template down window is respected.
        let mut cfg = presets::smoke();
        cfg.faults.reboot_secs = 120.0;
        a.apply(&mut cfg, 2);
        assert_eq!(cfg.faults.reboot_secs, 120.0);
    }

    #[test]
    fn validated_churn_sweep_holds_invariants_and_labels_faults() {
        // The acceptance sweep: crashes and blackouts injected at every
        // non-zero axis point, full validation on — the fault ledger
        // must keep every invariant green.
        let mut spec = quick_spec();
        spec.base.faults.blackout_rate_per_hour = 4.0;
        spec.base.faults.blackout_secs = 30.0;
        spec.axis = SweepAxis::CrashRate(vec![0.0, 2.0, 6.0]);
        spec.validate = true;
        let out = run_sweep_observed(&spec, 4, &|_| {});
        assert!(out.errors.is_empty(), "{:?}", out.errors);
        assert_eq!(out.violations, 0, "churn broke an invariant");
        assert_eq!(out.cells.len(), 3 * 2);
        assert!(out.cells[0].faults.contains("blackout=4/h+30s"));
        assert!(!out.cells[0].faults.contains("crash="));
        assert!(out.cells[2].faults.contains("crash=2/h+60s"));
        // Faults actually fired: the injected-fault events show up in
        // the folded totals.
        assert!(out.totals.node_crashes > 0);
        assert!(out.totals.blackouts > 0);
    }
}
