//! Parallel parameter sweeps — the engine behind every Fig. 8 / Fig. 9
//! series.
//!
//! A sweep is `axis points x policies x seeds` independent simulations.
//! Runs are embarrassingly parallel and fully deterministic, so the
//! runner just spreads the job list over a crossbeam scoped-thread pool
//! (guide-recommended for fork-join parallelism without lifetime
//! contortions) and averages the per-seed reports.

use crate::config::{PolicyKind, ScenarioConfig};
use crate::report::Report;
use crate::world::World;
use dtn_core::stats::OnlineStats;
use dtn_core::units::Bytes;
use dtn_telemetry::{EventTotals, Recorder};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};

/// The swept parameter — the paper's three x-axes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SweepAxis {
    /// Initial copies `L` (Fig. 8/9 a-c): 16, 20, ..., 64.
    InitialCopies(Vec<u32>),
    /// Buffer size in MB (Fig. 8/9 d-f): 2, 2.5, ..., 5.
    BufferMb(Vec<f64>),
    /// Message generation interval `[lo, hi]` seconds (Fig. 8/9 g-i):
    /// `[10,15]`, `[15,20]`, ..., `[45,50]`.
    GenInterval(Vec<(f64, f64)>),
}

impl SweepAxis {
    /// The paper's initial-copies sweep.
    pub fn paper_copies() -> Self {
        SweepAxis::InitialCopies((16..=64).step_by(4).collect())
    }

    /// The paper's buffer-size sweep.
    pub fn paper_buffers() -> Self {
        SweepAxis::BufferMb(vec![2.0, 2.5, 3.0, 3.5, 4.0, 4.5, 5.0])
    }

    /// The paper's generation-rate sweep.
    pub fn paper_gen_rates() -> Self {
        SweepAxis::GenInterval(
            (0..8)
                .map(|i| (10.0 + 5.0 * i as f64, 15.0 + 5.0 * i as f64))
                .collect(),
        )
    }

    /// Number of sweep points.
    pub fn len(&self) -> usize {
        match self {
            SweepAxis::InitialCopies(v) => v.len(),
            SweepAxis::BufferMb(v) => v.len(),
            SweepAxis::GenInterval(v) => v.len(),
        }
    }

    /// True when the axis has no points.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Axis display name.
    pub fn name(&self) -> &'static str {
        match self {
            SweepAxis::InitialCopies(_) => "initial copies L",
            SweepAxis::BufferMb(_) => "buffer size (MB)",
            SweepAxis::GenInterval(_) => "generation interval (s)",
        }
    }

    /// Label of point `i`.
    pub fn label(&self, i: usize) -> String {
        match self {
            SweepAxis::InitialCopies(v) => v[i].to_string(),
            SweepAxis::BufferMb(v) => format!("{}", v[i]),
            SweepAxis::GenInterval(v) => format!("{}-{}", v[i].0, v[i].1),
        }
    }

    /// Numeric x value of point `i` (for plotting).
    pub fn value(&self, i: usize) -> f64 {
        match self {
            SweepAxis::InitialCopies(v) => v[i] as f64,
            SweepAxis::BufferMb(v) => v[i],
            SweepAxis::GenInterval(v) => (v[i].0 + v[i].1) / 2.0,
        }
    }

    /// Applies point `i` to a scenario.
    pub fn apply(&self, cfg: &mut ScenarioConfig, i: usize) {
        match self {
            SweepAxis::InitialCopies(v) => cfg.initial_copies = v[i],
            SweepAxis::BufferMb(v) => cfg.buffer_capacity = Bytes::from_mb(v[i]),
            SweepAxis::GenInterval(v) => cfg.gen_interval = v[i],
        }
    }
}

/// A full sweep specification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepSpec {
    /// The scenario template (its `policy`, `seed` and the swept field
    /// are overwritten per run).
    pub base: ScenarioConfig,
    /// The x-axis.
    pub axis: SweepAxis,
    /// The strategies to compare.
    pub policies: Vec<PolicyKind>,
    /// Seeds to average over.
    pub seeds: Vec<u64>,
}

/// Averaged metrics for one `(axis point, policy)` cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepCell {
    /// Axis point index.
    pub axis_index: usize,
    /// Axis point label (e.g. "2.5" or "25-35").
    pub axis_label: String,
    /// Numeric axis value for plotting.
    pub axis_value: f64,
    /// Policy legend label.
    pub policy: String,
    /// Mean delivery ratio across seeds.
    pub delivery_ratio: f64,
    /// Std-dev of delivery ratio across seeds (0 for one seed).
    pub delivery_ratio_std: f64,
    /// Mean average hopcount.
    pub avg_hopcount: f64,
    /// Mean overhead ratio.
    pub overhead_ratio: f64,
    /// Mean delivery latency, seconds.
    pub avg_latency: f64,
    /// Mean generated messages per run.
    pub created: f64,
    /// Seeds aggregated.
    pub runs: usize,
}

/// Live progress of a sweep, reported once per completed run.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepProgress {
    /// Runs finished so far (this one included).
    pub completed: usize,
    /// Total runs in the sweep.
    pub total: usize,
    /// Axis label of the finished run.
    pub axis_label: String,
    /// Policy legend label of the finished run.
    pub policy: String,
}

/// Runs the sweep on `threads` worker threads (pass 0 to use the
/// available parallelism). Returns one cell per `(axis point, policy)`,
/// ordered axis-major then policy.
pub fn run_sweep(spec: &SweepSpec, threads: usize) -> Vec<SweepCell> {
    run_sweep_observed(spec, threads, &|_| {}).0
}

/// [`run_sweep`] with telemetry: every run carries a counting-only
/// recorder whose event totals are folded into the returned
/// [`EventTotals`], and `observe` is called (from worker threads) after
/// each completed run.
pub fn run_sweep_observed(
    spec: &SweepSpec,
    threads: usize,
    observe: &(dyn Fn(SweepProgress) + Sync),
) -> (Vec<SweepCell>, EventTotals) {
    assert!(!spec.axis.is_empty(), "sweep axis has no points");
    assert!(!spec.policies.is_empty(), "sweep needs at least one policy");
    assert!(!spec.seeds.is_empty(), "sweep needs at least one seed");

    // Materialise the job list: (axis i, policy j, seed) -> config.
    struct Job {
        axis: usize,
        policy: usize,
        cfg: ScenarioConfig,
    }
    let mut jobs = Vec::new();
    for ai in 0..spec.axis.len() {
        for (pi, policy) in spec.policies.iter().enumerate() {
            for &seed in &spec.seeds {
                let mut cfg = spec.base.clone();
                spec.axis.apply(&mut cfg, ai);
                cfg.policy = *policy;
                cfg.seed = seed;
                if matches!(policy, PolicyKind::SdsrpOracle { .. }) {
                    cfg.oracle = true;
                }
                jobs.push(Job {
                    axis: ai,
                    policy: pi,
                    cfg,
                });
            }
        }
    }

    let threads = if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    } else {
        threads
    };
    let cursor = AtomicUsize::new(0);
    let completed = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<(usize, usize, Report)>>> =
        Mutex::new((0..jobs.len()).map(|_| None).collect());
    let totals: Mutex<EventTotals> = Mutex::new(EventTotals::default());

    crossbeam::scope(|scope| {
        for _ in 0..threads.min(jobs.len()) {
            scope.spawn(|_| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= jobs.len() {
                    break;
                }
                let job = &jobs[i];
                let mut world = World::build(&job.cfg);
                // Counting-only telemetry: no ring, no sink.
                world.attach_recorder(Recorder::enabled(0));
                let (report, recorder) = world.run_with_recorder();
                totals.lock().absorb(recorder.totals());
                results.lock()[i] = Some((job.axis, job.policy, report));
                let done = completed.fetch_add(1, Ordering::Relaxed) + 1;
                observe(SweepProgress {
                    completed: done,
                    total: jobs.len(),
                    axis_label: spec.axis.label(job.axis),
                    policy: spec.policies[job.policy].label().to_string(),
                });
            });
        }
    })
    .expect("sweep worker panicked");

    // Aggregate per (axis, policy).
    let mut agg: Vec<Vec<CellAgg>> =
        vec![vec![CellAgg::default(); spec.policies.len()]; spec.axis.len()];
    for slot in results.into_inner() {
        let (ai, pi, report) = slot.expect("job not executed");
        let a = &mut agg[ai][pi];
        a.delivery.push(report.delivery_ratio());
        a.hops.push(report.avg_hopcount());
        a.overhead.push(report.overhead_ratio());
        a.latency.push(report.avg_latency());
        a.created.push(report.created() as f64);
    }

    let mut cells = Vec::with_capacity(spec.axis.len() * spec.policies.len());
    for (ai, row) in agg.into_iter().enumerate() {
        for (pi, a) in row.into_iter().enumerate() {
            cells.push(SweepCell {
                axis_index: ai,
                axis_label: spec.axis.label(ai),
                axis_value: spec.axis.value(ai),
                policy: spec.policies[pi].label().to_string(),
                delivery_ratio: a.delivery.mean().unwrap_or(0.0),
                delivery_ratio_std: a.delivery.std_dev().unwrap_or(0.0),
                avg_hopcount: a.hops.mean().unwrap_or(0.0),
                overhead_ratio: a.overhead.mean().unwrap_or(0.0),
                avg_latency: a.latency.mean().unwrap_or(0.0),
                created: a.created.mean().unwrap_or(0.0),
                runs: a.delivery.count() as usize,
            });
        }
    }
    (cells, totals.into_inner())
}

#[derive(Clone, Default)]
struct CellAgg {
    delivery: OnlineStats,
    hops: OnlineStats,
    overhead: OnlineStats,
    latency: OnlineStats,
    created: OnlineStats,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::presets;

    fn quick_spec() -> SweepSpec {
        let mut base = presets::smoke();
        base.duration_secs = 600.0;
        base.n_nodes = 20;
        SweepSpec {
            base,
            axis: SweepAxis::InitialCopies(vec![8, 16]),
            policies: vec![PolicyKind::Fifo, PolicyKind::Sdsrp],
            seeds: vec![1, 2],
        }
    }

    #[test]
    fn axis_accessors() {
        let a = SweepAxis::paper_copies();
        assert_eq!(a.len(), 13);
        assert_eq!(a.label(0), "16");
        assert_eq!(a.value(12), 64.0);
        let b = SweepAxis::paper_buffers();
        assert_eq!(b.len(), 7);
        assert_eq!(b.label(1), "2.5");
        let g = SweepAxis::paper_gen_rates();
        assert_eq!(g.len(), 8);
        assert_eq!(g.label(0), "10-15");
        assert_eq!(g.label(7), "45-50");
        assert_eq!(g.value(0), 12.5);
        assert!(!a.is_empty());
    }

    #[test]
    fn axis_apply() {
        let mut cfg = presets::smoke();
        SweepAxis::paper_copies().apply(&mut cfg, 2);
        assert_eq!(cfg.initial_copies, 24);
        SweepAxis::paper_buffers().apply(&mut cfg, 0);
        assert_eq!(cfg.buffer_capacity, Bytes::from_mb(2.0));
        SweepAxis::paper_gen_rates().apply(&mut cfg, 3);
        assert_eq!(cfg.gen_interval, (25.0, 30.0));
    }

    #[test]
    fn sweep_runs_and_aggregates() {
        let spec = quick_spec();
        let cells = run_sweep(&spec, 4);
        assert_eq!(cells.len(), 2 * 2);
        for c in &cells {
            assert_eq!(c.runs, 2);
            assert!(c.created > 0.0);
            assert!((0.0..=1.0).contains(&c.delivery_ratio));
        }
        // Ordering: axis-major, then policy.
        assert_eq!(cells[0].axis_label, "8");
        assert_eq!(cells[0].policy, "SprayAndWait");
        assert_eq!(cells[1].policy, "SDSRP");
        assert_eq!(cells[2].axis_label, "16");
    }

    #[test]
    fn sweep_is_deterministic_across_thread_counts() {
        let spec = quick_spec();
        let a = run_sweep(&spec, 1);
        let b = run_sweep(&spec, 8);
        assert_eq!(a, b);
    }

    #[test]
    fn observed_sweep_reports_progress_and_totals() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let spec = quick_spec();
        let seen = AtomicUsize::new(0);
        let max_completed = AtomicUsize::new(0);
        let (cells, totals) = run_sweep_observed(&spec, 2, &|p: SweepProgress| {
            seen.fetch_add(1, Ordering::Relaxed);
            max_completed.fetch_max(p.completed, Ordering::Relaxed);
            assert_eq!(p.total, 8); // 2 axis points x 2 policies x 2 seeds
            assert!(!p.axis_label.is_empty());
            assert!(!p.policy.is_empty());
        });
        assert_eq!(cells.len(), 4);
        assert_eq!(seen.load(Ordering::Relaxed), 8);
        assert_eq!(max_completed.load(Ordering::Relaxed), 8);
        // The aggregate totals reconcile with the aggregated reports:
        // every counted generation produced one MessageGenerated event.
        let created: f64 = cells.iter().map(|c| c.created * c.runs as f64).sum();
        assert_eq!(totals.generated, created.round() as u64);
        assert!(totals.contacts_up > 0);
    }

    #[test]
    #[should_panic(expected = "at least one policy")]
    fn empty_policies_rejected() {
        let mut spec = quick_spec();
        spec.policies.clear();
        let _ = run_sweep(&spec, 1);
    }
}
