//! Seeded random scenario generation — one source of truth for the
//! property-based integration tests (`tests/proptest_scenarios.rs`) and
//! the `dtn-fuzz` nightly fuzzer.
//!
//! [`random_scenario`] maps a `u64` seed to a small but fully-valid
//! [`ScenarioConfig`] drawn from the same parameter space the proptests
//! exercise: every generated scenario passes
//! `ScenarioConfig::validate`, so a panic (or invariant violation)
//! under fuzzing is a simulator bug, never a malformed input. The map
//! is deterministic — a failing case is replayed from its seed alone.

use crate::config::{ImmunityMode, PolicyKind, RoutingKind, ScenarioConfig};
use dtn_core::geometry::Rect;
use dtn_core::time::SimDuration;
use dtn_core::units::Bytes;
use dtn_mobility::random_waypoint::RandomWaypointConfig;
use dtn_mobility::MobilityConfig;
use dtn_net::LinkConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Buffer policies the generator draws from (the paper's contenders
/// plus the ablation extras; custom-lambda variants are exercised by
/// the ablation binary instead).
pub const POLICY_POOL: [PolicyKind; 9] = [
    PolicyKind::Fifo,
    PolicyKind::Lifo,
    PolicyKind::TtlRatio,
    PolicyKind::CopiesRatio,
    PolicyKind::Mofo,
    PolicyKind::Shli,
    PolicyKind::Random,
    PolicyKind::Sdsrp,
    PolicyKind::Knapsack,
];

/// Routing substrates the generator draws from.
pub const ROUTING_POOL: [RoutingKind; 5] = [
    RoutingKind::SprayAndWaitBinary,
    RoutingKind::SprayAndWaitSource,
    RoutingKind::Epidemic,
    RoutingKind::Direct,
    RoutingKind::SprayAndFocus {
        handoff_threshold: 30.0,
    },
];

/// Immunity mechanisms the generator draws from.
pub const IMMUNITY_POOL: [ImmunityMode; 3] = [
    ImmunityMode::None,
    ImmunityMode::OracleFlood,
    ImmunityMode::AntipacketGossip,
];

/// Deterministically maps `seed` to a random small scenario.
///
/// The returned config always satisfies `ScenarioConfig::validate`
/// (checked by a unit test over a seed sweep): node counts start at 4,
/// buffers always fit the largest message, durations and intervals are
/// strictly positive.
pub fn random_scenario(seed: u64) -> ScenarioConfig {
    // XOR with a fixed tag so `random_scenario(0)` does not start from
    // the all-zero RNG state.
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5d5f_9a11_0c3a_7e01);
    scenario_from_rng(&mut rng, seed)
}

fn scenario_from_rng(rng: &mut StdRng, seed: u64) -> ScenarioConfig {
    let n_nodes = rng.gen_range(4usize..16);
    let duration = rng.gen_range(300.0f64..900.0);
    let policy = POLICY_POOL[rng.gen_range(0..POLICY_POOL.len())];
    let routing = ROUTING_POOL[rng.gen_range(0..ROUTING_POOL.len())];
    let immunity = IMMUNITY_POOL[rng.gen_range(0..IMMUNITY_POOL.len())];
    let copies = rng.gen_range(1u32..24);
    let run_seed = rng.gen_range(1u64..1000);
    let buffer_mb = rng.gen_range(1.0f64..4.0);
    let gen_lo = rng.gen_range(4.0f64..40.0);
    ScenarioConfig {
        name: format!("fuzz-{seed}"),
        n_nodes,
        duration_secs: duration,
        tick_secs: 1.0,
        mobility: MobilityConfig::RandomWaypoint(RandomWaypointConfig {
            area: Rect::from_size(800.0, 600.0),
            min_speed: 1.0,
            max_speed: 3.0,
            min_pause: 0.0,
            max_pause: 10.0,
        }),
        link: LinkConfig::paper(),
        buffer_capacity: Bytes::from_mb(buffer_mb),
        message_size: Bytes::from_mb(0.5),
        gen_interval: (gen_lo, gen_lo + 5.0),
        ttl: SimDuration::from_mins(30.0),
        initial_copies: copies,
        policy,
        routing,
        seed: run_seed,
        oracle: false,
        immunity,
        message_size_max: Some(Bytes::from_mb(0.8)),
        traffic: Default::default(),
        warmup_secs: 0.0,
        faults: Default::default(),
    }
}

/// Deterministically maps `seed` to a random (possibly empty) fault
/// plan for churn fuzzing. Uses its own RNG (distinct XOR tag), so
/// attaching a plan to [`random_scenario`]`(seed)` does not disturb the
/// pinned draw sequence that makes fuzz cases replayable from their
/// seed alone. Every feature is enabled independently with probability
/// 1/2, so the fuzzer also keeps covering partial and empty plans;
/// the result always satisfies `FaultPlan::validate`.
pub fn random_fault_plan(seed: u64) -> crate::config::FaultPlan {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7c1e_44d2_93ab_06f5);
    let mut plan = crate::config::FaultPlan::default();
    if rng.gen_bool(0.5) {
        plan.crash_rate_per_hour = rng.gen_range(0.5f64..8.0);
        plan.reboot_secs = rng.gen_range(10.0f64..120.0);
    }
    if rng.gen_bool(0.5) {
        plan.blackout_rate_per_hour = rng.gen_range(0.5f64..8.0);
        plan.blackout_secs = rng.gen_range(5.0f64..60.0);
    }
    if rng.gen_bool(0.5) {
        plan.transfer_abort_prob = rng.gen_range(0.01f64..0.3);
    }
    if rng.gen_bool(0.5) {
        plan.clock_skew_max_secs = rng.gen_range(1.0f64..30.0);
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic() {
        for seed in [0u64, 1, 42, 9999] {
            assert_eq!(random_scenario(seed), random_scenario(seed));
        }
        assert_ne!(random_scenario(1), random_scenario(2));
    }

    #[test]
    fn generated_scenarios_are_always_valid() {
        for seed in 0..200 {
            let cfg = random_scenario(seed);
            cfg.validate(); // panics on any malformed field
            assert!(cfg.n_nodes >= 4);
            assert!(cfg.message_size <= cfg.buffer_capacity);
            assert!(cfg.gen_interval.0 < cfg.gen_interval.1);
            assert_eq!(cfg.name, format!("fuzz-{seed}"));
        }
    }

    #[test]
    fn fault_plan_generator_is_deterministic_valid_and_independent() {
        for seed in [0u64, 1, 42, 9999] {
            assert_eq!(random_fault_plan(seed), random_fault_plan(seed));
        }
        for seed in 0..200 {
            random_fault_plan(seed).validate();
        }
        // Attaching a fault plan must not change the scenario draws.
        for seed in [3u64, 77] {
            let mut with = random_scenario(seed);
            with.faults = random_fault_plan(seed);
            with.faults = Default::default();
            assert_eq!(with, random_scenario(seed));
        }
    }

    #[test]
    fn fault_plan_generator_covers_empty_partial_and_full_plans() {
        let mut empty = 0;
        let mut full = 0;
        let mut partial = 0;
        for seed in 0..200 {
            let p = random_fault_plan(seed);
            let features = [
                p.crash_rate_per_hour > 0.0,
                p.blackout_rate_per_hour > 0.0,
                p.transfer_abort_prob > 0.0,
                p.clock_skew_max_secs > 0.0,
            ]
            .iter()
            .filter(|&&f| f)
            .count();
            match features {
                0 => empty += 1,
                4 => full += 1,
                _ => partial += 1,
            }
        }
        assert!(empty > 0, "empty plans must stay in the fuzz corpus");
        assert!(full > 0);
        assert!(partial > 0);
    }

    #[test]
    fn generator_covers_the_policy_and_routing_pools() {
        use std::collections::HashSet;
        let mut policies = HashSet::new();
        let mut routings = HashSet::new();
        for seed in 0..300 {
            let cfg = random_scenario(seed);
            policies.insert(cfg.policy.label().to_string());
            routings.insert(format!("{:?}", cfg.routing));
        }
        assert_eq!(policies.len(), POLICY_POOL.len(), "policies: {policies:?}");
        assert_eq!(routings.len(), ROUTING_POOL.len(), "routings: {routings:?}");
    }
}
