//! Messages and buffered copies.

use dtn_core::ids::{MessageId, NodeId};
use dtn_core::time::{SimDuration, SimTime};
use dtn_core::units::Bytes;
use serde::{Deserialize, Serialize};

/// The immutable descriptor of a generated message (shared by all
/// copies; the world keeps the catalog).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Message {
    /// Unique id.
    pub id: MessageId,
    /// Source node.
    pub source: NodeId,
    /// Destination node.
    pub destination: NodeId,
    /// Payload size.
    pub size: Bytes,
    /// Generation time.
    pub created: SimTime,
    /// Initial time-to-live.
    pub ttl: SimDuration,
    /// Initial copy tokens (`L` / `C` in the paper).
    pub initial_copies: u32,
}

impl Message {
    /// Absolute expiry instant.
    pub fn expires_at(&self) -> SimTime {
        self.created + self.ttl
    }

    /// Remaining TTL at `now` (can go negative after expiry).
    pub fn remaining_ttl(&self, now: SimTime) -> SimDuration {
        self.expires_at() - now
    }

    /// True once the TTL has elapsed at `now`.
    pub fn expired(&self, now: SimTime) -> bool {
        now >= self.expires_at()
    }
}

/// One node's copy of a message: the mutable, per-holder state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BufferedCopy {
    /// Which message.
    pub msg: MessageId,
    /// When this node received the copy.
    pub received: SimTime,
    /// Copy tokens held (`C_i`).
    pub copies: u32,
    /// Hops from the source to this node (source holds 0).
    pub hops: u32,
    /// Times this node forwarded/replicated the message.
    pub forward_count: u32,
    /// Binary-spray timestamps along this copy's path (paper Fig. 6).
    pub spray_times: Vec<SimTime>,
}

impl BufferedCopy {
    /// The copy held by the source right after generation.
    pub fn at_source(msg: &Message) -> Self {
        BufferedCopy {
            msg: msg.id,
            received: msg.created,
            copies: msg.initial_copies,
            hops: 0,
            forward_count: 0,
            spray_times: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg() -> Message {
        Message {
            id: MessageId(1),
            source: NodeId(0),
            destination: NodeId(5),
            size: Bytes::from_mb(0.5),
            created: SimTime::from_secs(100.0),
            ttl: SimDuration::from_mins(300.0),
            initial_copies: 32,
        }
    }

    #[test]
    fn expiry_arithmetic() {
        let m = msg();
        assert_eq!(m.expires_at(), SimTime::from_secs(18_100.0));
        assert_eq!(
            m.remaining_ttl(SimTime::from_secs(10_100.0)).as_secs(),
            8000.0
        );
        assert!(!m.expired(SimTime::from_secs(18_099.0)));
        assert!(m.expired(SimTime::from_secs(18_100.0)));
        assert!(m.remaining_ttl(SimTime::from_secs(20_000.0)).is_negative());
    }

    #[test]
    fn source_copy() {
        let m = msg();
        let c = BufferedCopy::at_source(&m);
        assert_eq!(c.copies, 32);
        assert_eq!(c.hops, 0);
        assert_eq!(c.received, m.created);
        assert!(c.spray_times.is_empty());
    }
}
