//! # dtn-sim
//!
//! The assembled DTN simulator: scenarios in, the paper's three metrics
//! out.
//!
//! * [`config`] — [`config::ScenarioConfig`] with the
//!   paper's Table II (random waypoint) and Table III (EPFL substitute)
//!   presets; [`config::PolicyKind`] /
//!   [`config::RoutingKind`] factories.
//! * [`message`] — message descriptors and per-node buffered copies.
//! * [`node`] — a node: buffer + buffer policy + routing protocol.
//! * [`report`] — delivery ratio, average hopcount, overhead ratio and
//!   the supporting counters, with the paper's exact definitions.
//! * [`world`] — the event-driven simulation itself.
//! * [`sweep`] — parallel parameter sweeps (policies x axis x seeds)
//!   used by every Fig. 8 / Fig. 9 series, with panic isolation,
//!   checkpoint/resume and optional per-cell invariant validation.
//! * [`scenario_gen`] — seeded random scenario generation shared by the
//!   property tests and the `dtn-fuzz` nightly fuzzer.
//! * [`replay`] — deterministic replay from a run manifest, plus
//!   differential harnesses (thread counts, policy matrix).
//! * [`output`] — CSV and markdown emitters for the figure harnesses.
//!
//! ## Model fidelity notes (vs. the ONE simulator)
//!
//! * Movement is sampled on a fixed tick (default 1 s, like ONE's 0.1-1 s
//!   step) and contacts are disc-model with inclusive range.
//! * One transfer at a time per contact (the link is half-duplex and
//!   serialises), `duration = size / bitrate`; a contact ending mid
//!   transfer aborts it with no partial delivery.
//! * No ACKs / immunity: delivered messages keep circulating until TTL
//!   expiry (paper Section III-A). TTL expiry purges copies everywhere.
//! * Deliverable messages always preempt relay traffic, then the buffer
//!   policy's scheduling order decides (paper Algorithm 1).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod message;
pub mod node;
pub mod output;
pub mod replay;
pub mod report;
pub mod scenario_gen;
pub mod sweep;
pub mod timeseries;
pub mod world;

pub use config::{PolicyKind, RoutingKind, ScenarioConfig};
pub use report::Report;
pub use world::World;
