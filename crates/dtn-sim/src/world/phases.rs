//! The tick pipeline: explicit, ordered phases.
//!
//! Every `Tick` event runs the same fixed phase sequence. Phase order
//! is part of the determinism contract — each phase observes exactly
//! the state the previous phases left:
//!
//! 1. **expiry** — purge TTL-dead copies (node-ordered walk).
//! 2. **movement** — sample all trajectories into the SoA position
//!    array (*parallel*, per-node RNG substreams).
//! 3. **contacts** — rebuild the spatial grid, query in-range pairs
//!    (*parallel*, row-band reduction), diff against the previous tick
//!    and dispatch ContactDown/ContactUp in sorted-pair order.
//! 4. **telemetry** — gauges and due time-series samples.
//! 5. **rearm** — restart idle live links in sorted-pair order.
//! 6. **validation** — the full-state invariant sweep, when enabled.
//!
//! The parallel phases (2 and 3) are the embarrassingly parallel ones:
//! per-item outputs only, merged in band order, so fingerprints are
//! bit-identical at any thread count.

use super::*;

impl World {
    pub(super) fn on_tick(&mut self) {
        self.phase_expiry();
        self.phase_movement();
        self.phase_contacts();
        self.phase_telemetry();
        self.phase_rearm();
        self.phase_validation();

        let next = self.now + SimDuration::from_secs(self.cfg.tick_secs);
        if next.as_secs() <= self.cfg.duration_secs {
            self.queue.push(next, WorldEvent::Tick);
        }
    }

    /// Phase 1: drop every TTL-expired copy. Nodes are walked in index
    /// order and each buffer is a `BTreeMap`, so the drop sequence is
    /// deterministic.
    fn phase_expiry(&mut self) {
        let now = self.now;
        for node in &mut self.nodes {
            let expired: Vec<MessageId> = node
                .buffer
                .keys()
                .copied()
                .filter(|id| self.catalog[id.index()].expired(now))
                .collect();
            for id in expired {
                let size = self.catalog[id.index()].size;
                let removed = node.remove_copy(id, size);
                self.report.on_expired();
                let holder = node.id.0;
                self.recorder.record(|| SimEvent::TtlExpired {
                    t: now.as_secs(),
                    msg: id.0,
                    node: holder,
                });
                if let Some(o) = self.oracle.as_mut() {
                    o.holders[id.index()] = o.holders[id.index()].saturating_sub(1);
                }
                if let Some(v) = self.validator.as_mut() {
                    v.on_expired(id, removed.copies);
                }
                recycle_spray(&mut self.spray_pool, removed);
            }
        }
    }

    /// Phase 2: parallel movement sampling into the SoA position array.
    fn phase_movement(&mut self) {
        self.soa.sample_movement(self.now, &self.pool);
    }

    /// Phase 3: parallel contact-grid query, then the serial diff and
    /// contact handler dispatch (Down before Up, sorted pairs — the
    /// tracker guarantees the order).
    fn phase_contacts(&mut self) {
        let mut events = std::mem::take(&mut self.scratch_events);
        events.clear();
        self.tracker
            .update_pooled(self.now, &self.soa.positions, &mut events, Some(&self.pool));
        for ev in &events {
            if let Some(trace) = self.contact_trace.as_mut() {
                trace.record(*ev);
            }
            match *ev {
                ContactEvent::Down { pair, .. } => self.on_contact_down(pair),
                ContactEvent::Up { pair, .. } => self.on_contact_up(pair),
            }
        }
        self.scratch_events = events;
    }

    /// Phase 4: gauges + due time-series samples.
    fn phase_telemetry(&mut self) {
        if let Some(m) = self.metrics.as_ref() {
            let live = self.links.len() as f64;
            let cache = self.priority_cache_stats();
            let metrics = self.recorder.metrics_mut();
            metrics.set_gauge(m.live_contacts, live);
            metrics.set_gauge(m.priority_cache_hits, cache.hits as f64);
            metrics.set_gauge(m.priority_cache_incremental, cache.incremental as f64);
            metrics.set_gauge(m.priority_cache_misses, cache.misses as f64);
        }
        if self.recorder.timeseries_due(self.now.as_secs()) {
            let point = self.sample_timepoint();
            self.recorder.record_timepoint(point);
        }
    }

    /// Phase 5: catch-all rearm — restart any idle live link (new
    /// messages may have arrived since the link went idle).
    fn phase_rearm(&mut self) {
        self.rearm_idle_links(None);
    }

    /// Phase 6: the full-state validation sweep (no-op without a
    /// validator).
    fn phase_validation(&mut self) {
        self.run_validation_sweep();
    }

    /// Re-arms every idle live link — all of them, or only those
    /// touching `node`. The single rearm path in the simulator (the
    /// per-tick catch-all and the per-transfer kicks both land here).
    ///
    /// `links` is a `BTreeMap`, so the iteration is already in
    /// sorted-pair order — same-instant `TransferComplete` events apply
    /// in push order, and this is what keeps that order independent of
    /// link insertion history. (The former `HashMap` + sort pairing
    /// made the same guarantee by re-sorting on every sweep; the
    /// ordered map removes the hazard instead of patching it.) The pair
    /// list still lives in a reusable scratch buffer so the sweep
    /// allocates nothing in steady state.
    pub(super) fn rearm_idle_links(&mut self, touching: Option<NodeId>) {
        let mut idle = std::mem::take(&mut self.scratch_idle);
        idle.clear();
        idle.extend(
            self.links
                .iter()
                .filter(|(p, s)| {
                    s.in_flight.is_none() && touching.is_none_or(|n| p.lo() == n || p.hi() == n)
                })
                .map(|(&p, _)| p),
        );
        debug_assert!(idle.windows(2).all(|w| w[0] < w[1]), "BTreeMap order");
        for &pair in &idle {
            self.try_start_transfer(pair);
        }
        self.scratch_idle = idle;
    }

    /// Computes one time-series sample from the current state.
    fn sample_timepoint(&self) -> crate::timeseries::TimePoint {
        let mut occ_sum = 0.0;
        let mut occ_max = 0.0f64;
        let mut total_copies = 0usize;
        let mut live: HashSet<MessageId> = HashSet::new();
        for node in &self.nodes {
            let frac = node.used.as_u64() as f64 / node.capacity.as_u64().max(1) as f64;
            occ_sum += frac;
            occ_max = occ_max.max(frac);
            total_copies += node.buffer.len();
            live.extend(node.buffer.keys().copied());
        }
        crate::timeseries::TimePoint {
            t: self.now.as_secs(),
            mean_occupancy: occ_sum / self.nodes.len() as f64,
            max_occupancy: occ_max,
            live_contacts: self.links.len(),
            live_messages: live.len(),
            total_copies,
        }
    }

    /// One full-state validation sweep: walks every buffer and lets the
    /// validator cross-check its hook-path ledger against reality.
    /// `Node.buffer` is a `BTreeMap`, so the walk (and the float
    /// accumulation inside the estimator statistics) is deterministic.
    pub(super) fn run_validation_sweep(&mut self) {
        let Some(v) = self.validator.as_mut() else {
            return;
        };
        let now = self.now;
        v.begin_sweep(now, self.cfg.tick_secs);
        for node in &self.nodes {
            v.sweep_node(now, node.id, node.used.as_u64(), node.capacity.as_u64());
            for copy in node.buffer.values() {
                let msg = &self.catalog[copy.msg.index()];
                let delivered_here = node.delivered.contains(&copy.msg);
                v.sweep_copy(
                    now,
                    node.id,
                    copy.msg,
                    copy.copies,
                    msg.size.as_u64(),
                    &copy.spray_times,
                    delivered_here,
                );
            }
        }
        let outcome = v.finish_sweep(now);
        self.emit_sweep_outcome(&outcome);
    }

    fn emit_sweep_outcome(&mut self, outcome: &SweepOutcome) {
        for n in &outcome.new_violations {
            let (t, check, msg, node) = (n.t, n.check, n.msg, n.node);
            self.recorder.record(|| SimEvent::InvariantViolation {
                t,
                check,
                msg,
                node,
            });
            if let Some(m) = self.validate_metrics.as_ref() {
                self.recorder.metrics_mut().inc(m.invariant_violations, 1);
            }
        }
        if let Some(s) = outcome.sample {
            if s.samples > 0 {
                let t = self.now.as_secs();
                self.recorder.record(|| SimEvent::EstimatorSample {
                    t,
                    samples: s.samples,
                    mean_err_m: s.mean_err_m,
                    max_err_m: s.max_err_m,
                    mean_err_n: s.mean_err_n,
                    max_err_n: s.max_err_n,
                });
                if let Some(m) = self.validate_metrics.as_ref() {
                    let reg = self.recorder.metrics_mut();
                    reg.observe(m.estimator_m_rel_err, s.mean_err_m);
                    reg.observe(m.estimator_n_rel_err, s.mean_err_n);
                }
            }
        }
    }

    /// Final validation sweep + run-level estimator gauges. Called from
    /// every consuming run path; harmless without a validator.
    pub(super) fn finalize_validation(&mut self) {
        if self.validator.is_none() {
            return;
        }
        self.run_validation_sweep();
        if let (Some(v), Some(m)) = (self.validator.as_ref(), self.validate_metrics.as_ref()) {
            let r = v.report();
            let (m_mean, m_max) = (r.estimator_m.mean(), r.estimator_m.max);
            let (n_mean, n_max) = (r.estimator_n.mean(), r.estimator_n.max);
            let reg = self.recorder.metrics_mut();
            reg.set_gauge(m.estimator_m_mean_rel_err, m_mean);
            reg.set_gauge(m.estimator_m_max_rel_err, m_max);
            reg.set_gauge(m.estimator_n_mean_rel_err, n_mean);
            reg.set_gauge(m.estimator_n_max_rel_err, n_max);
        }
    }
}
