//! Contact up/down handlers: link state, control-plane gossip, and the
//! antipacket exchange. Dispatched from the contact phase (and from
//! fault injection, which forces contacts down through the same path).

use super::*;

impl World {
    pub(super) fn on_contact_up(&mut self, pair: NodePair) {
        self.links.insert(pair, LinkState::default());
        let now = self.now;
        let t = now.as_secs();
        let (lo, hi) = (pair.lo().0, pair.hi().0);
        self.recorder
            .record(|| SimEvent::ContactUp { t, a: lo, b: hi });
        let (a, b) = two_nodes(&mut self.nodes, pair.lo(), pair.hi());
        a.policy.on_contact_up(now, b.id);
        b.policy.on_contact_up(now, a.id);
        a.routing.on_contact_up(now, b.id);
        b.routing.on_contact_up(now, a.id);
        // Control-plane gossip, both ways (dropped lists, encounter
        // timers). Export both first so neither side sees the other's
        // merged state.
        let ga = a.policy.export_gossip(now);
        let gb = b.policy.export_gossip(now);
        if let Some(v) = self.validator.as_mut() {
            if let Some(bytes) = ga.as_deref() {
                v.on_gossip_export(now, a.id, bytes);
            }
            if let Some(bytes) = gb.as_deref() {
                v.on_gossip_export(now, b.id, bytes);
            }
        }
        if let Some(bytes) = gb {
            let adopted = a.policy.import_gossip(now, &bytes);
            if adopted > 0 {
                self.recorder.record(|| SimEvent::GossipMerged {
                    t,
                    node: lo,
                    from: hi,
                    records: adopted as u64,
                });
            }
        }
        if let Some(bytes) = ga {
            let adopted = b.policy.import_gossip(now, &bytes);
            if adopted > 0 {
                self.recorder.record(|| SimEvent::GossipMerged {
                    t,
                    node: hi,
                    from: lo,
                    records: adopted as u64,
                });
            }
        }
        let ra = a.routing.export_gossip(now);
        let rb = b.routing.export_gossip(now);
        if let Some(bytes) = rb {
            a.routing.import_gossip(now, b.id, &bytes);
        }
        if let Some(bytes) = ra {
            b.routing.import_gossip(now, a.id, &bytes);
        }
        if self.cfg.immunity == ImmunityMode::AntipacketGossip {
            // Antipacket exchange: union the acknowledged-id sets, then
            // purge newly-learned dead copies on both sides.
            let from_b: Vec<MessageId> = b.acked.difference(&a.acked).copied().collect();
            let from_a: Vec<MessageId> = a.acked.difference(&b.acked).copied().collect();
            a.acked.extend(from_b);
            b.acked.extend(from_a);
            self.purge_acked(pair.lo());
            self.purge_acked(pair.hi());
        }
        self.try_start_transfer(pair);
    }

    pub(super) fn on_contact_down(&mut self, pair: NodePair) {
        if let Some(state) = self.links.remove(&pair) {
            if state.in_flight.is_some() {
                self.report.on_aborted_transfer();
            }
        }
        let now = self.now;
        let t = now.as_secs();
        let (lo, hi) = (pair.lo().0, pair.hi().0);
        self.recorder
            .record(|| SimEvent::ContactDown { t, a: lo, b: hi });
        let (a, b) = two_nodes(&mut self.nodes, pair.lo(), pair.hi());
        a.policy.on_contact_down(now, b.id);
        b.policy.on_contact_down(now, a.id);
        a.routing.on_contact_down(now, b.id);
        b.routing.on_contact_down(now, a.id);
    }
}
