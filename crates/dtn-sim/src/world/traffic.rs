//! Traffic generation and buffer admission: the `Generate` event
//! handler plus the two admission paths (forced at the source,
//! Algorithm 1 on arrival).

use super::*;

impl World {
    pub(super) fn on_generate(&mut self) {
        let n = self.cfg.n_nodes;
        let source = NodeId(self.traffic_rng.gen_range(0..n as u32));
        let destination = loop {
            let d = NodeId(self.traffic_rng.gen_range(0..n as u32));
            if d != source {
                break d;
            }
        };
        // Fixed size (the paper's 0.5 MB) or drawn uniformly from the
        // configured range (extension for size-aware policies).
        let size = match self.cfg.message_size_max {
            None => self.cfg.message_size,
            Some(max) => {
                let lo = self.cfg.message_size.as_u64() as f64;
                let hi = max.as_u64() as f64;
                dtn_core::units::Bytes::new(
                    uniform_range(&mut self.traffic_rng, lo, hi).round() as u64
                )
            }
        };
        let msg = Message {
            id: MessageId(self.catalog.len() as u64),
            source,
            destination,
            size,
            created: self.now,
            ttl: self.cfg.ttl,
            initial_copies: self.cfg.initial_copies,
        };
        self.catalog.push(msg);
        if self.now.as_secs() >= self.cfg.warmup_secs {
            self.report.on_created();
            let t = self.now.as_secs();
            let copies = self.cfg.initial_copies;
            self.recorder.record(|| SimEvent::MessageGenerated {
                t,
                msg: msg.id.0,
                src: source.0,
                dst: destination.0,
                size: size.as_u64(),
                copies,
            });
        } else {
            self.uncounted.insert(msg.id);
        }
        if let Some(o) = self.oracle.as_mut() {
            o.seen.push(HashSet::new());
            o.holders.push(0);
        }
        if let Some(v) = self.validator.as_mut() {
            v.on_generated(
                msg.id,
                source,
                msg.initial_copies,
                msg.expires_at().as_secs(),
            );
        }

        // Source-side admission. ONE's `makeRoomForNewMessage` always
        // makes room for a *newly generated* message by evicting per the
        // drop policy — the newcomer itself is exempt from rejection.
        // (Applying Algorithm 1's newcomer-vs-lowest rule here would
        // penalise only SDSRP: every baseline ranks a fresh message
        // highest, while SDSRP's Eq. 10 can rank an unsprayed
        // long-TTL message below nearly-expired residents and then
        // refuse its *own* message at birth.)
        let copy = BufferedCopy::at_source(&msg);
        self.admit_copy_forced(source, msg.id, copy);

        // Schedule the next generation.
        let (lo, hi) = self.cfg.gen_interval;
        let gap = match self.cfg.traffic {
            crate::config::TrafficModel::Uniform => uniform_range(&mut self.traffic_rng, lo, hi),
            crate::config::TrafficModel::Poisson => {
                // Same mean rate as the uniform setting.
                let rate = 2.0 / (lo + hi);
                dtn_core::rng::exponential(&mut self.traffic_rng, rate)
            }
        };
        let next = self.now + SimDuration::from_secs(gap);
        if next.as_secs() <= self.cfg.duration_secs {
            self.queue.push(next, WorldEvent::Generate);
        }

        self.rearm_idle_links(Some(source));
    }

    /// Forced admission for newly generated messages: evicts the
    /// lowest-retention-priority residents until the newcomer fits
    /// (always succeeds because `validate` guarantees a single message
    /// fits in an empty buffer).
    fn admit_copy_forced(&mut self, node_id: NodeId, msg_id: MessageId, copy: BufferedCopy) {
        let now = self.now;
        let msg = self.catalog[msg_id.index()];
        let node = &mut self.nodes[node_id.index()];
        let free = node.free();
        let mut victims = std::mem::take(&mut self.victim_scratch);
        victims.clear();
        if free < msg.size {
            // Lazy lowest-keep-priority selection: heapify every
            // resident in O(B), pop only the victims actually needed.
            // `EvictionRank` orders by `(priority, id)` — the total
            // order the former full sort used — so the victim sequence
            // is unchanged. Every resident is ranked at the same `now`
            // snapshot the overflow decision uses.
            let policy = node.policy.as_mut();
            let catalog = &self.catalog;
            let oracle = self.oracle.as_ref();
            let candidates = node.buffer.values().map(|c| {
                let m = &catalog[c.msg.index()];
                let oi = oracle.map(|o| o.of(c.msg));
                let view = make_view(m, c, now, oi);
                EvictionRank {
                    priority: policy.keep_priority(now, &view),
                    id: c.msg,
                    size: m.size,
                }
            });
            self.evict_scratch
                .select_victims(candidates, free, msg.size, &mut victims);
        }
        for &(victim, size) in &victims {
            let node = &mut self.nodes[node_id.index()];
            let removed = node.remove_copy(victim, size);
            node.policy.on_drop(now, victim);
            let policy = node.policy.name();
            self.report.on_buffer_drop();
            self.recorder.record(|| SimEvent::Dropped {
                t: now.as_secs(),
                msg: victim.0,
                node: node_id.0,
                policy,
                reason: DropReason::Evicted,
            });
            if let Some(o) = self.oracle.as_mut() {
                o.holders[victim.index()] = o.holders[victim.index()].saturating_sub(1);
            }
            if let Some(v) = self.validator.as_mut() {
                v.on_evicted(victim, node_id, removed.copies);
            }
            recycle_spray(&mut self.spray_pool, removed);
        }
        victims.clear();
        self.victim_scratch = victims;
        self.nodes[node_id.index()].insert_copy(copy, msg.size);
        if let Some(o) = self.oracle.as_mut() {
            o.holders[msg_id.index()] += 1;
        }
        if let Some(v) = self.validator.as_mut() {
            v.on_inserted(msg_id, node_id);
        }
    }

    /// Runs the admission algorithm for `copy` arriving at `node_id`;
    /// applies evictions and insertion. Returns true if admitted.
    pub(super) fn admit_copy(
        &mut self,
        node_id: NodeId,
        msg_id: MessageId,
        copy: BufferedCopy,
    ) -> bool {
        let now = self.now;
        let msg = self.catalog[msg_id.index()];
        let oracle_info = self.oracle.as_ref().map(|o| o.of(msg_id));
        let incoming_tokens = copy.copies;

        let node = &mut self.nodes[node_id.index()];
        let free = node.free();
        let capacity = node.capacity;

        // Build views of incoming + residents.
        let incoming_view = make_view(&msg, &copy, now, oracle_info);
        let resident_views: Vec<_> = node
            .buffer
            .values()
            .map(|c| {
                let m = &self.catalog[c.msg.index()];
                let oi = self.oracle.as_ref().map(|o| o.of(c.msg));
                make_view(m, c, now, oi)
            })
            .collect();
        let plan = plan_admission_with(
            node.policy.as_mut(),
            now,
            &incoming_view,
            &resident_views,
            free,
            capacity,
            &mut self.evict_scratch,
        );
        drop(resident_views);

        match plan {
            AdmissionPlan::RejectIncoming => {
                // Algorithm 1 line 10-11: the newcomer is the drop victim.
                self.report.on_incoming_reject();
                node.policy.on_drop(now, msg_id);
                let policy = node.policy.name();
                self.recorder.record(|| SimEvent::Dropped {
                    t: now.as_secs(),
                    msg: msg_id.0,
                    node: node_id.0,
                    policy,
                    reason: DropReason::RejectedIncoming,
                });
                if let Some(v) = self.validator.as_mut() {
                    v.on_rejected_incoming(msg_id, node_id, incoming_tokens);
                }
                recycle_spray(&mut self.spray_pool, copy);
                false
            }
            AdmissionPlan::Admit { evict } => {
                for victim in evict {
                    let size = self.catalog[victim.index()].size;
                    let removed = node.remove_copy(victim, size);
                    node.policy.on_drop(now, victim);
                    let policy = node.policy.name();
                    self.report.on_buffer_drop();
                    self.recorder.record(|| SimEvent::Dropped {
                        t: now.as_secs(),
                        msg: victim.0,
                        node: node_id.0,
                        policy,
                        reason: DropReason::Evicted,
                    });
                    if let Some(o) = self.oracle.as_mut() {
                        o.holders[victim.index()] = o.holders[victim.index()].saturating_sub(1);
                    }
                    if let Some(v) = self.validator.as_mut() {
                        v.on_evicted(victim, node_id, removed.copies);
                    }
                    recycle_spray(&mut self.spray_pool, removed);
                }
                self.nodes[node_id.index()].insert_copy(copy, msg.size);
                if let Some(o) = self.oracle.as_mut() {
                    o.holders[msg_id.index()] += 1;
                    if node_id != msg.source {
                        o.seen[msg_id.index()].insert(node_id);
                    }
                }
                if let Some(v) = self.validator.as_mut() {
                    v.on_inserted(msg_id, node_id);
                }
                true
            }
        }
    }
}
