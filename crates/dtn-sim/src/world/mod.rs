//! The event-driven DTN world: mobility + contacts + routing + buffers.
//!
//! ## Event loop
//!
//! Three event kinds drive the simulation:
//!
//! * **Tick** (every `tick_secs`): a fixed sequence of explicit phases —
//!   expiry, movement sampling, contact-grid detection, telemetry,
//!   link rearm, validation (see [`phases`]). The embarrassingly
//!   parallel phases (movement integration, grid pair queries) fan out
//!   across the world's [`Pool`] with deterministic band-order
//!   reduction, so fingerprints are bit-identical at any thread count.
//! * **Generate**: create a message at a random source for a random
//!   destination, pass it through the source's admission control, and
//!   schedule the next generation `U(lo, hi)` seconds later.
//! * **TransferComplete**: apply a finished transfer (delivery /
//!   replication / handoff), run the receiver's admission control
//!   (Algorithm 1's drop step), and start the next transfer on the link.
//!
//! ## Module layout
//!
//! The world is one `impl World` split across focused submodules:
//! [`phases`] (the tick pipeline), [`soa`] (structure-of-arrays node
//! state), [`contacts`] (contact up/down + gossip), [`transfers`]
//! (candidate selection and transfer application), [`traffic`]
//! (generation + admission), [`faults`] (crash/blackout injection).
//!
//! ## Contact protocol
//!
//! On ContactUp both sides: exchange buffer-policy gossip (SDSRP dropped
//! lists) and routing gossip (Spray-and-Focus timers), then the link —
//! half-duplex, one transfer at a time — picks the best transfer among
//! both directions: deliverable messages first (ONE's rule), then the
//! sender's buffer-policy scheduling priority (paper Algorithm 1 line 7).
//!
//! ## Determinism contract
//!
//! Every run is a pure function of `(ScenarioConfig, seed)` — threads
//! and telemetry included. The load-bearing rules:
//!
//! * **RNG lanes**: every random decision draws from a dedicated
//!   stream/substream of the master seed (`dtn_core::rng::streams`);
//!   per-node substreams (mobility, fault schedules) make per-node work
//!   order-free and therefore parallelizable.
//! * **Reduction order**: parallel phases partition work into ascending
//!   contiguous index bands and merge outputs in band order, which
//!   reproduces the serial left-to-right order at any thread count.
//! * **Ordered collections on mutation paths**: any map/set whose
//!   iteration feeds world-state mutation, the event queue, or
//!   telemetry is ordered (`BTreeMap`/`BTreeSet`/indexed vecs) —
//!   `HashMap` iteration order would otherwise leak into the run.

mod contacts;
mod faults;
mod phases;
mod soa;
#[cfg(test)]
mod tests;
mod traffic;
mod transfers;

pub use soa::NodeArrays;

use crate::config::{ImmunityMode, RoutingKind, ScenarioConfig};
use crate::message::{BufferedCopy, Message};
use crate::node::{make_view, two_nodes, Node};
use crate::report::Report;
use dtn_buffer::policy::{
    plan_admission_with, AdmissionPlan, EvictionRank, EvictionScratch, PriorityCacheStats,
};
use dtn_core::event::EventQueue;
use dtn_core::ids::{MessageId, NodeId, NodePair};
use dtn_core::pool::Pool;
use dtn_core::rng::{exponential, stream_rng, streams, substream_rng, uniform_range};
use dtn_core::time::{SimDuration, SimTime};
use dtn_net::contact::{ContactEvent, ContactTracker};
use dtn_net::trace::ContactTrace;
use dtn_routing::protocol::{RoutingCtx, TransferKind};
use dtn_telemetry::{DropReason, Recorder, SimEvent};
use dtn_validate::{SweepOutcome, ValidateConfig, ValidationReport, Validator};
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::{BTreeMap, HashSet};

/// World events.
#[derive(Debug, Clone, Copy, PartialEq)]
enum WorldEvent {
    /// Movement / contact-detection tick.
    Tick,
    /// Generate one message.
    Generate,
    /// A transfer scheduled with sequence number `seq` finishes on
    /// `pair`.
    TransferComplete { pair: NodePair, seq: u64 },
    /// Injected fault: `node` crashes, wiping its volatile state.
    NodeCrash { node: NodeId },
    /// Injected fault: `node` comes back up after a crash.
    NodeReboot { node: NodeId },
    /// Injected fault: `node`'s radio goes dark (state intact).
    BlackoutStart { node: NodeId },
    /// Injected fault: `node`'s radio recovers.
    BlackoutEnd { node: NodeId },
}

/// An in-flight transfer on one link.
#[derive(Debug, Clone, Copy)]
struct InFlight {
    seq: u64,
    from: NodeId,
    to: NodeId,
    msg: MessageId,
    kind: TransferKind,
    /// The sender's copy-token count when the transfer was scheduled.
    /// A `Replicate` split is derived from this count; if another link
    /// completes a split of the same message first, applying this one
    /// would counterfeit tokens, so it aborts instead.
    copies_at_start: u32,
}

/// Per-live-contact link state.
#[derive(Debug, Default)]
struct LinkState {
    in_flight: Option<InFlight>,
}

/// Perfect global knowledge for the oracle ablation.
struct OracleState {
    /// Nodes (excluding the source) that have ever received each message.
    seen: Vec<HashSet<NodeId>>,
    /// Buffers currently holding each message.
    holders: Vec<u32>,
}

impl OracleState {
    fn of(&self, msg: MessageId) -> (u32, u32) {
        (
            self.seen[msg.index()].len() as u32,
            self.holders[msg.index()],
        )
    }
}

/// Metric handles registered on the recorder by
/// [`World::attach_recorder`].
struct WorldMetrics {
    events_processed: dtn_telemetry::CounterId,
    delivery_latency_secs: dtn_telemetry::HistogramId,
    transfer_bytes: dtn_telemetry::HistogramId,
    live_contacts: dtn_telemetry::GaugeId,
    /// Cumulative priority-memo counters aggregated across every node,
    /// refreshed each telemetry phase. Gauges, not counters: the nodes
    /// own the running totals and the world just mirrors them.
    priority_cache_hits: dtn_telemetry::GaugeId,
    priority_cache_incremental: dtn_telemetry::GaugeId,
    priority_cache_misses: dtn_telemetry::GaugeId,
}

/// Metric handles registered when both a recorder and the validator
/// are attached.
struct ValidateMetrics {
    invariant_violations: dtn_telemetry::CounterId,
    estimator_m_rel_err: dtn_telemetry::HistogramId,
    estimator_n_rel_err: dtn_telemetry::HistogramId,
    estimator_m_mean_rel_err: dtn_telemetry::GaugeId,
    estimator_m_max_rel_err: dtn_telemetry::GaugeId,
    estimator_n_mean_rel_err: dtn_telemetry::GaugeId,
    estimator_n_max_rel_err: dtn_telemetry::GaugeId,
}

/// A transfer candidate considered for an idle link.
#[derive(Debug, Clone, Copy)]
struct Candidate {
    from: NodeId,
    to: NodeId,
    msg: MessageId,
    kind: TransferKind,
    is_delivery: bool,
    priority: f64,
}

/// The assembled simulation.
pub struct World {
    cfg: ScenarioConfig,
    nodes: Vec<Node>,
    /// Hot per-tick node state in structure-of-arrays form — positions,
    /// mobility models, radio-down depths, clock skews — the arrays the
    /// parallel phases stream over. Cold per-node protocol state
    /// (buffers, policies, routing) stays in [`Node`].
    soa: NodeArrays,
    tracker: ContactTracker,
    /// Per-live-contact link state. A `BTreeMap` so every iteration —
    /// the rearm sweep in particular — is in sorted-pair order by
    /// construction; a `HashMap` here would leak nondeterministic
    /// iteration order into the event queue (the ordering-hazard class
    /// the insertion-order proptests guard against).
    links: BTreeMap<NodePair, LinkState>,
    queue: EventQueue<WorldEvent>,
    now: SimTime,
    traffic_rng: StdRng,
    catalog: Vec<Message>,
    report: Report,
    oracle: Option<OracleState>,
    next_transfer_seq: u64,
    /// Messages generated during warm-up: simulated but excluded from
    /// metrics.
    uncounted: HashSet<MessageId>,
    contact_trace: Option<ContactTrace>,
    recorder: Recorder,
    metrics: Option<WorldMetrics>,
    /// Invariant checker + estimator oracle; `None` (the default) costs
    /// one branch per hook site.
    validator: Option<Box<Validator>>,
    validate_metrics: Option<ValidateMetrics>,
    /// `(receiver, message)` pairs whose refusal was already reported —
    /// a refused candidate is re-examined on every scheduling pass.
    refused_seen: HashSet<(NodeId, MessageId)>,
    scratch_events: Vec<ContactEvent>,
    /// Reusable idle-pair buffer for [`Self::rearm_idle_links`] — the
    /// rearm sweep runs on every tick and twice per transfer completion,
    /// so its allocation is hoisted out of the hot path.
    scratch_idle: Vec<NodePair>,
    /// Recycled spray-timestamp vectors: replications pop one instead of
    /// allocating a fresh clone, removals push theirs back (bounded by
    /// [`SPRAY_POOL_CAP`]).
    spray_pool: Vec<Vec<SimTime>>,
    /// Reusable eviction-heap backing for both admission paths — every
    /// overflow heapifies the resident set, so the allocation is
    /// hoisted out of the per-admission hot path.
    evict_scratch: EvictionScratch,
    /// Reusable victim list for forced (source-side) admission.
    victim_scratch: Vec<(MessageId, dtn_core::units::Bytes)>,
    /// RNG for mid-transfer abort injection; `None` (never consulted)
    /// when `transfer_abort_prob` is zero, so zero-fault runs draw
    /// nothing from the FAULTS stream.
    abort_rng: Option<StdRng>,
    /// Fork-join pool driving the parallel phases; a single thread
    /// (inline, no workers) by default. A *runtime* knob like
    /// [`Self::set_priority_cache`] — not part of [`ScenarioConfig`],
    /// so config hashes, manifests and checkpoint keys are unaffected —
    /// because results are bit-identical at any thread count.
    pool: Pool,
}

/// Upper bound on [`World::spray_pool`] — enough to cover the buffered
/// copies of a busy node without hoarding memory on large sweeps.
const SPRAY_POOL_CAP: usize = 64;

impl World {
    /// Builds a world from a validated scenario.
    pub fn build(cfg: &ScenarioConfig) -> World {
        let n = cfg.n_nodes;
        let seed = cfg.seed;
        let policy = cfg.policy;
        Self::build_with_policies(cfg, &mut |id| policy.build(id, n, seed))
    }

    /// Builds a world with a caller-supplied buffer policy per node —
    /// the extension point for policies outside
    /// [`PolicyKind`](crate::config::PolicyKind) (the scenario's own
    /// `policy` field is ignored). See `examples/custom_policy.rs`.
    pub fn build_with_policies(
        cfg: &ScenarioConfig,
        make_policy: &mut dyn FnMut(NodeId) -> Box<dyn dtn_buffer::policy::BufferPolicy>,
    ) -> World {
        cfg.validate();
        let mobility = dtn_mobility::build_fleet(&cfg.mobility, cfg.n_nodes, cfg.seed);
        let area = cfg.mobility.area();
        let tracker = ContactTracker::new(area, cfg.link.range);
        let nodes: Vec<Node> = NodeId::all(cfg.n_nodes)
            .map(|id| {
                Node::new(
                    id,
                    cfg.buffer_capacity,
                    make_policy(id),
                    cfg.routing.build(),
                )
            })
            .collect();
        let mut queue = EventQueue::new();
        queue.push(SimTime::ZERO, WorldEvent::Tick);
        queue.push(SimTime::ZERO, WorldEvent::Generate);

        // Fault injection: the whole schedule is precomputed here from
        // dedicated FAULTS-stream substreams, one per node per fault
        // kind, so fault timing is independent of everything else in
        // the run. Every draw is gated on its feature being enabled —
        // an empty `FaultPlan` draws nothing and pushes nothing, which
        // is what keeps zero-fault runs bit-identical to builds that
        // predate fault injection.
        let faults = &cfg.faults;
        let mut clock_skew = Vec::new();
        let mut abort_rng = None;
        if !faults.is_empty() {
            if faults.clock_skew_max_secs > 0.0 {
                let mut rng = substream_rng(cfg.seed, streams::FAULTS, 1);
                let max = faults.clock_skew_max_secs;
                clock_skew = (0..cfg.n_nodes)
                    .map(|_| uniform_range(&mut rng, -max, max))
                    .collect();
            }
            if faults.transfer_abort_prob > 0.0 {
                abort_rng = Some(substream_rng(cfg.seed, streams::FAULTS, 2));
            }
            // Crash/reboot and blackout windows: exponential
            // inter-arrivals per node; the next candidate window starts
            // only after the previous one ends, so a node's windows of
            // the same kind never overlap.
            let mut schedule = |rate_per_hour: f64,
                                down_secs: f64,
                                sub_base: u64,
                                start: fn(NodeId) -> WorldEvent,
                                end: fn(NodeId) -> WorldEvent| {
                if rate_per_hour <= 0.0 {
                    return;
                }
                let rate = rate_per_hour / 3600.0;
                for i in 0..cfg.n_nodes {
                    let node = NodeId(i as u32);
                    let mut rng = substream_rng(cfg.seed, streams::FAULTS, sub_base + i as u64);
                    let mut t = 0.0;
                    loop {
                        t += exponential(&mut rng, rate);
                        if t > cfg.duration_secs {
                            break;
                        }
                        queue.push(SimTime::from_secs(t), start(node));
                        t += down_secs;
                        if t > cfg.duration_secs {
                            break;
                        }
                        queue.push(SimTime::from_secs(t), end(node));
                    }
                }
            };
            schedule(
                faults.crash_rate_per_hour,
                faults.reboot_secs,
                0x1000,
                |node| WorldEvent::NodeCrash { node },
                |node| WorldEvent::NodeReboot { node },
            );
            schedule(
                faults.blackout_rate_per_hour,
                faults.blackout_secs,
                0x2000,
                |node| WorldEvent::BlackoutStart { node },
                |node| WorldEvent::BlackoutEnd { node },
            );
        }

        World {
            cfg: cfg.clone(),
            nodes,
            soa: NodeArrays::new(mobility, clock_skew),
            tracker,
            links: BTreeMap::new(),
            queue,
            now: SimTime::ZERO,
            traffic_rng: stream_rng(cfg.seed, streams::TRAFFIC),
            catalog: Vec::new(),
            report: Report::new(),
            oracle: cfg.oracle.then(|| OracleState {
                seen: Vec::new(),
                holders: Vec::new(),
            }),
            next_transfer_seq: 0,
            uncounted: HashSet::new(),
            contact_trace: None,
            recorder: Recorder::disabled(),
            metrics: None,
            validator: None,
            validate_metrics: None,
            refused_seen: HashSet::new(),
            scratch_events: Vec::new(),
            scratch_idle: Vec::new(),
            spray_pool: Vec::new(),
            evict_scratch: EvictionScratch::default(),
            victim_scratch: Vec::new(),
            abort_rng,
            pool: Pool::new(1),
        }
    }

    /// Installs a telemetry recorder. An enabled recorder receives every
    /// [`SimEvent`] the run produces and gets the world's metrics
    /// (`events_processed`, `delivery_latency_secs`, `transfer_bytes`,
    /// `live_contacts`) registered on it. Call before
    /// [`enable_timeseries`](Self::enable_timeseries) — attaching
    /// replaces the previous recorder, time series included.
    pub fn attach_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
        self.metrics = if self.recorder.is_enabled() {
            let m = self.recorder.metrics_mut();
            Some(WorldMetrics {
                events_processed: m.counter("events_processed"),
                delivery_latency_secs: m.histogram(
                    "delivery_latency_secs",
                    &[60.0, 300.0, 900.0, 1800.0, 3600.0, 7200.0],
                ),
                transfer_bytes: m.histogram(
                    "transfer_bytes",
                    &[65_536.0, 262_144.0, 524_288.0, 1_048_576.0, 4_194_304.0],
                ),
                live_contacts: m.gauge("live_contacts"),
                priority_cache_hits: m.gauge("priority_cache_hits"),
                priority_cache_incremental: m.gauge("priority_cache_incremental"),
                priority_cache_misses: m.gauge("priority_cache_misses"),
            })
        } else {
            None
        };
        self.refresh_validate_metrics();
    }

    /// Enables invariant checking and the estimator oracle for this
    /// run. Must be called before the first message is generated.
    ///
    /// Every simulator state transition is mirrored into a ground-truth
    /// ledger and every tick ends with a full-state sweep that
    /// cross-checks it (copy-token conservation, holder counts, buffer
    /// accounting, delivery/TTL hygiene, dropped-list gossip). When a
    /// recorder is attached, violations and estimator-error samples are
    /// also emitted as [`SimEvent`]s and metrics. Token conservation is
    /// asserted only for routing protocols that conserve spray tokens
    /// (the Spray-and-Wait family and direct delivery); epidemic and
    /// PRoPHET mint a copy per replication by design.
    pub fn enable_validation(&mut self, cfg: ValidateConfig) {
        assert!(
            self.catalog.is_empty(),
            "enable_validation must be called before any message is generated"
        );
        let conserve = matches!(
            self.cfg.routing,
            RoutingKind::SprayAndWaitBinary
                | RoutingKind::SprayAndWaitSource
                | RoutingKind::SprayAndFocus { .. }
                | RoutingKind::Direct
        );
        self.validator = Some(Box::new(Validator::new(cfg, self.cfg.n_nodes, conserve)));
        self.refresh_validate_metrics();
    }

    /// Whether [`enable_validation`](Self::enable_validation) was
    /// called.
    pub fn validation_enabled(&self) -> bool {
        self.validator.is_some()
    }

    /// Mutable access to the validator — fault injection for harness
    /// self-tests and mid-run report inspection.
    pub fn validator_mut(&mut self) -> Option<&mut Validator> {
        self.validator.as_deref_mut()
    }

    /// Runs a final validation sweep and takes the accumulated report.
    /// For worlds driven via [`step_until`](Self::step_until); the
    /// consuming run methods finalize automatically.
    pub fn take_validation_report(&mut self) -> Option<ValidationReport> {
        self.finalize_validation();
        self.validator.as_mut().map(|v| v.take_report())
    }

    fn refresh_validate_metrics(&mut self) {
        self.validate_metrics = if self.validator.is_some() && self.recorder.is_enabled() {
            let m = self.recorder.metrics_mut();
            Some(ValidateMetrics {
                invariant_violations: m.counter("invariant_violations"),
                estimator_m_rel_err: m
                    .histogram("estimator_m_rel_err", &[0.1, 0.25, 0.5, 1.0, 2.0, 5.0]),
                estimator_n_rel_err: m
                    .histogram("estimator_n_rel_err", &[0.1, 0.25, 0.5, 1.0, 2.0, 5.0]),
                estimator_m_mean_rel_err: m.gauge("estimator_m_mean_rel_err"),
                estimator_m_max_rel_err: m.gauge("estimator_m_max_rel_err"),
                estimator_n_mean_rel_err: m.gauge("estimator_n_mean_rel_err"),
                estimator_n_max_rel_err: m.gauge("estimator_n_max_rel_err"),
            })
        } else {
            None
        };
    }

    /// Read access to the attached recorder (totals, ring, metrics).
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Runs to completion, returning the report plus the recorder with
    /// its accumulated totals, event ring, metrics and any sampled time
    /// series. The recorder's sink is flushed.
    pub fn run_with_recorder(mut self) -> (Report, Recorder) {
        let end = SimTime::from_secs(self.cfg.duration_secs);
        while let Some((t, ev)) = self.queue.pop_until(end) {
            self.now = t;
            self.handle(ev);
        }
        self.finalize_validation();
        self.recorder.flush();
        (self.report, self.recorder)
    }

    /// Runs to completion with validation enabled (enabling it with
    /// defaults if needed), returning the report, the validation
    /// report, and the recorder.
    pub fn run_validated(mut self) -> (Report, ValidationReport, Recorder) {
        if self.validator.is_none() {
            self.enable_validation(ValidateConfig::default());
        }
        let end = SimTime::from_secs(self.cfg.duration_secs);
        while let Some((t, ev)) = self.queue.pop_until(end) {
            self.now = t;
            self.handle(ev);
        }
        self.finalize_validation();
        self.recorder.flush();
        let validation = self
            .validator
            .as_mut()
            .expect("enabled above")
            .take_report();
        (self.report, validation, self.recorder)
    }

    /// Samples occupancy/contact/message time series every
    /// `sample_every` simulated seconds. Call before [`run`](Self::run);
    /// retrieve with [`run_with_timeseries`](Self::run_with_timeseries).
    pub fn enable_timeseries(&mut self, sample_every: f64) {
        self.recorder.enable_timeseries(sample_every);
    }

    /// Runs to completion, returning the report plus the sampled time
    /// series (enabling it if necessary).
    pub fn run_with_timeseries(mut self) -> (Report, crate::timeseries::TimeSeries) {
        if !self.recorder.has_timeseries() {
            self.enable_timeseries(self.cfg.tick_secs.max(1.0) * 10.0);
        }
        let end = SimTime::from_secs(self.cfg.duration_secs);
        while let Some((t, ev)) = self.queue.pop_until(end) {
            self.now = t;
            self.handle(ev);
        }
        self.finalize_validation();
        self.recorder.flush();
        let ts = self.recorder.take_timeseries().expect("enabled above");
        (self.report, ts)
    }

    /// Records closed contact intervals for intermeeting analysis
    /// (Fig. 3). Call before [`run`](Self::run).
    pub fn enable_contact_recording(&mut self) {
        self.contact_trace = Some(ContactTrace::new());
    }

    /// Advances the simulation to `until` (capped at the scenario
    /// duration), returning the number of events processed. Interleave
    /// with the inspection accessors to watch a run evolve;
    /// [`run`](Self::run) remains the one-shot alternative.
    pub fn step_until(&mut self, until: SimTime) -> u64 {
        let end = until.min(SimTime::from_secs(self.cfg.duration_secs));
        let mut processed = 0;
        while let Some((t, ev)) = self.queue.pop_until(end) {
            self.now = t;
            self.handle(ev);
            processed += 1;
        }
        self.now = self.now.max(end);
        processed
    }

    /// Current simulation clock.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Messages currently buffered at `node`.
    pub fn buffered_count(&self, node: NodeId) -> usize {
        self.nodes[node.index()].buffered_count()
    }

    /// Contacts currently up.
    pub fn live_contacts(&self) -> usize {
        self.links.len()
    }

    /// Runs the scenario to completion and returns the report.
    pub fn run(mut self) -> Report {
        let end = SimTime::from_secs(self.cfg.duration_secs);
        while let Some((t, ev)) = self.queue.pop_until(end) {
            self.now = t;
            self.handle(ev);
        }
        self.finalize_validation();
        // Close open contacts so the contact trace is complete.
        if self.contact_trace.is_some() {
            let mut events = Vec::new();
            self.tracker.close_all(end, &mut events);
            if let Some(trace) = self.contact_trace.as_mut() {
                for ev in events {
                    trace.record(ev);
                }
            }
        }
        self.report
    }

    /// Runs to completion but also returns the recorded contact trace
    /// (empty unless [`enable_contact_recording`](Self::enable_contact_recording)
    /// was called).
    pub fn run_with_trace(mut self) -> (Report, ContactTrace) {
        if self.contact_trace.is_none() {
            self.enable_contact_recording();
        }
        let end = SimTime::from_secs(self.cfg.duration_secs);
        while let Some((t, ev)) = self.queue.pop_until(end) {
            self.now = t;
            self.handle(ev);
        }
        self.finalize_validation();
        let mut events = Vec::new();
        self.tracker.close_all(end, &mut events);
        let mut trace = self.contact_trace.take().expect("enabled above");
        for ev in events {
            trace.record(ev);
        }
        (self.report, trace)
    }

    fn handle(&mut self, ev: WorldEvent) {
        if let Some(m) = self.metrics.as_ref() {
            self.recorder.metrics_mut().inc(m.events_processed, 1);
        }
        match ev {
            WorldEvent::Tick => self.on_tick(),
            WorldEvent::Generate => self.on_generate(),
            WorldEvent::TransferComplete { pair, seq } => self.on_transfer_complete(pair, seq),
            WorldEvent::NodeCrash { node } => self.on_node_crash(node),
            WorldEvent::NodeReboot { node } => self.on_node_reboot(node),
            WorldEvent::BlackoutStart { node } => self.on_blackout_start(node),
            WorldEvent::BlackoutEnd { node } => self.on_blackout_end(node),
        }
    }

    /// Read access to the report while building tests.
    pub fn report(&self) -> &Report {
        &self.report
    }

    /// Number of generated messages so far.
    pub fn catalog_len(&self) -> usize {
        self.catalog.len()
    }

    /// Sets the number of threads the parallel phases (movement
    /// sampling, contact-grid queries) fan out across. A *runtime*
    /// toggle like [`Self::set_priority_cache`] — not part of
    /// [`ScenarioConfig`], so config hashes, manifests and checkpoint
    /// resume keys are unaffected. Results are bit-identical at any
    /// value; the thread-count differential battery
    /// (`tests/parallel_world.rs`) enforces it. Values are clamped to
    /// at least 1; a 1-thread world runs everything inline and spawns
    /// nothing.
    pub fn set_threads(&mut self, threads: usize) {
        let threads = threads.max(1);
        if threads != self.pool.threads() {
            self.pool = Pool::new(threads);
        }
    }

    /// Threads the parallel phases use (1 = the serial reference path).
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// Enables or disables priority memoisation on every node's buffer
    /// policy. A *runtime* toggle (not part of [`ScenarioConfig`], so
    /// config hashes and manifests are unaffected): the cache is a pure
    /// optimisation and results are bit-identical either way, which the
    /// differential regression suite enforces by running with it off as
    /// the reference path. Call right after `build` — flipping it
    /// mid-run is safe (the cache self-invalidates) but pointless.
    pub fn set_priority_cache(&mut self, enabled: bool) {
        for node in &mut self.nodes {
            node.policy.set_priority_cache(enabled);
        }
    }

    /// Aggregate priority-cache hit/miss counters across every node's
    /// buffer policy. Policies without a cache contribute nothing, so
    /// the result is `(0, 0)`-shaped for non-SDSRP runs.
    pub fn priority_cache_stats(&self) -> PriorityCacheStats {
        let mut total = PriorityCacheStats::default();
        for node in &self.nodes {
            if let Some(stats) = node.policy.priority_cache_stats() {
                total.merge(stats);
            }
        }
        total
    }
}

/// Returns a removed copy's spray-timestamp allocation to the pool so
/// the next replication reuses it instead of allocating a fresh clone.
/// Purely an allocation-recycling measure: the vector is cleared, so
/// simulation state is untouched.
fn recycle_spray(pool: &mut Vec<Vec<SimTime>>, mut copy: BufferedCopy) {
    if pool.len() < SPRAY_POOL_CAP && copy.spray_times.capacity() > 0 {
        copy.spray_times.clear();
        pool.push(std::mem::take(&mut copy.spray_times));
    }
}

/// Deterministic comparison: deliveries beat relays, then higher
/// priority, then lower message id, then lower sender id.
fn pick_better(a: Candidate, b: Candidate) -> Candidate {
    if a.is_delivery != b.is_delivery {
        return if a.is_delivery { a } else { b };
    }
    match a
        .priority
        .partial_cmp(&b.priority)
        .expect("priorities are never NaN")
    {
        std::cmp::Ordering::Less => b,
        std::cmp::Ordering::Greater => a,
        std::cmp::Ordering::Equal => {
            if (b.msg, b.from) < (a.msg, a.from) {
                b
            } else {
                a
            }
        }
    }
}
