use super::*;
use crate::config::{presets, PolicyKind, RoutingKind};
use dtn_core::units::Bytes;
use dtn_mobility::MobilityConfig;

/// Two stationary nodes in range: a message generated at one must be
/// delivered to the other by direct contact.
fn tiny_two_node(policy: PolicyKind) -> ScenarioConfig {
    ScenarioConfig {
        name: "two-node".into(),
        n_nodes: 2,
        duration_secs: 300.0,
        tick_secs: 1.0,
        mobility: MobilityConfig::Stationary {
            positions: vec![(0.0, 0.0), (50.0, 0.0)],
        },
        link: dtn_net::LinkConfig::paper(),
        buffer_capacity: Bytes::from_mb(2.5),
        message_size: Bytes::from_mb(0.5),
        gen_interval: (50.0, 50.0),
        ttl: SimDuration::from_mins(300.0),
        initial_copies: 4,
        policy,
        routing: RoutingKind::SprayAndWaitBinary,
        seed: 7,
        oracle: false,
        immunity: crate::config::ImmunityMode::None,
        message_size_max: None,
        traffic: Default::default(),
        warmup_secs: 0.0,
        faults: Default::default(),
    }
}

#[test]
fn two_nodes_in_range_deliver_everything() {
    let report = World::build(&tiny_two_node(PolicyKind::Fifo)).run();
    assert!(report.created() >= 5, "created {}", report.created());
    // Source and destination are drawn from {0, 1}: every message's
    // destination is the other node and is permanently in range. A
    // message generated in the last 16 s (one transfer time) may not
    // finish before the simulation ends.
    assert!(
        report.delivered() >= report.created() - 1,
        "delivered {} of {}",
        report.delivered(),
        report.created()
    );
    assert_eq!(report.avg_hopcount(), 1.0);
}

#[test]
fn out_of_range_nodes_never_deliver() {
    let mut cfg = tiny_two_node(PolicyKind::Fifo);
    cfg.mobility = MobilityConfig::Stationary {
        positions: vec![(0.0, 0.0), (5000.0, 0.0)],
    };
    let report = World::build(&cfg).run();
    assert!(report.created() > 0);
    assert_eq!(report.delivered(), 0);
    assert_eq!(report.transmissions(), 0);
}

#[test]
fn delivery_ratio_reasonable_on_smoke_scenario() {
    let mut cfg = presets::smoke();
    cfg.policy = PolicyKind::Sdsrp;
    let report = World::build(&cfg).run();
    assert!(report.created() > 50, "created {}", report.created());
    let ratio = report.delivery_ratio();
    assert!(
        (0.05..=1.0).contains(&ratio),
        "implausible delivery ratio {ratio}"
    );
    assert!(report.transmissions() > 0);
    assert!(report.avg_hopcount() >= 1.0);
}

#[test]
fn deterministic_given_seed() {
    let run = |seed: u64| {
        let mut cfg = presets::smoke();
        cfg.duration_secs = 1200.0;
        cfg.seed = seed;
        let r = World::build(&cfg).run();
        (
            r.created(),
            r.delivered(),
            r.transmissions(),
            r.buffer_drops(),
        )
    };
    assert_eq!(run(5), run(5));
    assert_ne!(run(5), run(6));
}

#[test]
fn all_policies_run_the_smoke_scenario() {
    for policy in [
        PolicyKind::Fifo,
        PolicyKind::Lifo,
        PolicyKind::TtlRatio,
        PolicyKind::CopiesRatio,
        PolicyKind::Mofo,
        PolicyKind::Shli,
        PolicyKind::Random,
        PolicyKind::Sdsrp,
    ] {
        let mut cfg = presets::smoke();
        cfg.duration_secs = 900.0;
        cfg.policy = policy;
        let report = World::build(&cfg).run();
        assert!(report.created() > 0, "{policy:?} created nothing");
    }
}

#[test]
fn oracle_mode_runs_and_matches_structure() {
    let mut cfg = presets::smoke();
    cfg.duration_secs = 900.0;
    cfg.policy = PolicyKind::SdsrpOracle { lambda: 1e-3 };
    cfg.oracle = true;
    let report = World::build(&cfg).run();
    assert!(report.created() > 0);
}

#[test]
fn epidemic_and_direct_bracket_spray_and_wait() {
    // Multi-copy schemes beat direct delivery, and epidemic floods
    // far more transmissions. (Epidemic vs Spray-and-Wait delivery
    // can go either way here because the 250 kbps link — 16 s per
    // message — makes contact *bandwidth* the bottleneck, which is
    // exactly the congestion regime the paper targets.)
    let mk = |routing: RoutingKind| {
        let mut cfg = presets::smoke();
        cfg.duration_secs = 2400.0;
        cfg.buffer_capacity = Bytes::from_mb(50.0);
        cfg.policy = PolicyKind::Fifo;
        cfg.routing = routing;
        World::build(&cfg).run()
    };
    let epidemic = mk(RoutingKind::Epidemic);
    let saw = mk(RoutingKind::SprayAndWaitBinary);
    let direct = mk(RoutingKind::Direct);
    assert!(
        epidemic.delivery_ratio() > direct.delivery_ratio(),
        "flooding should beat direct delivery: {} vs {}",
        epidemic.delivery_ratio(),
        direct.delivery_ratio()
    );
    assert!(
        saw.delivery_ratio() > direct.delivery_ratio(),
        "spray-and-wait should beat direct delivery"
    );
    assert!(
        epidemic.transmissions() > saw.transmissions(),
        "epidemic should transmit more than token-limited SAW"
    );
    assert_eq!(direct.overhead_ratio(), 0.0, "direct has zero overhead");
}

#[test]
fn constrained_buffers_force_drops() {
    let mut cfg = presets::smoke();
    cfg.buffer_capacity = Bytes::from_mb(1.0); // two messages max
    cfg.gen_interval = (5.0, 10.0);
    cfg.policy = PolicyKind::Fifo;
    let report = World::build(&cfg).run();
    assert!(
        report.buffer_drops() + report.incoming_rejects() > 0,
        "no buffer pressure despite tiny buffers"
    );
}

#[test]
fn contact_trace_recording() {
    let mut cfg = presets::smoke();
    cfg.duration_secs = 1200.0;
    let mut world = World::build(&cfg);
    world.enable_contact_recording();
    let (_report, trace) = world.run_with_trace();
    assert!(!trace.is_empty(), "no contacts recorded");
    assert_eq!(trace.open_count(), 0, "unclosed contacts at end");
}

#[test]
fn ttl_expiry_purges_copies() {
    let mut cfg = tiny_two_node(PolicyKind::Fifo);
    // Nodes out of range: copies can only die by TTL.
    cfg.mobility = MobilityConfig::Stationary {
        positions: vec![(0.0, 0.0), (5000.0, 0.0)],
    };
    cfg.ttl = SimDuration::from_secs(60.0);
    cfg.duration_secs = 600.0;
    let report = World::build(&cfg).run();
    assert!(report.expirations() > 0);
}

#[test]
fn spray_and_focus_runs() {
    let mut cfg = presets::smoke();
    cfg.duration_secs = 1200.0;
    cfg.routing = RoutingKind::SprayAndFocus {
        handoff_threshold: 60.0,
    };
    let report = World::build(&cfg).run();
    assert!(report.created() > 0);
}

#[test]
fn flapping_contact_aborts_transfers() {
    // Node 0 parked at the origin; node 1 oscillates between x = 60
    // (in range) and x = 150 (out of range) every 30 s, so contacts
    // last ~27 s against a 16 s transfer time: some transfers finish,
    // others are cut off mid-flight and must abort cleanly.
    let mut body = String::from("0 0 0 0\n");
    for k in 0..100 {
        let t = k as f64 * 30.0;
        let x = if k % 2 == 0 { 60.0 } else { 150.0 };
        body.push_str(&format!("1 {t} {x} 0\n"));
    }
    let mut cfg = presets::smoke();
    cfg.name = "flapping".into();
    cfg.n_nodes = 2;
    cfg.duration_secs = 2900.0;
    cfg.mobility = MobilityConfig::TraceText { body };
    cfg.gen_interval = (20.0, 30.0);
    cfg.initial_copies = 2;
    cfg.policy = PolicyKind::Fifo;
    cfg.seed = 5;
    let r = World::build(&cfg).run();
    assert!(r.created() > 50);
    assert!(r.delivered() > 0, "no delivery despite periodic contact");
    assert!(
        r.aborted_transfers() > 0,
        "no transfer was ever cut off by the flapping contact"
    );
    // Aborted transfers never count as transmissions.
    assert!(r.transmissions() >= r.delivered());
}

#[test]
fn single_slot_buffers_still_deliver() {
    // Buffer = exactly one message: every admission is an eviction
    // battle. The system must stay consistent and still deliver.
    let mut cfg = presets::smoke();
    cfg.duration_secs = 2000.0;
    cfg.buffer_capacity = Bytes::from_mb(0.5);
    cfg.message_size = Bytes::from_mb(0.5);
    cfg.policy = PolicyKind::Sdsrp;
    cfg.seed = 9;
    let r = World::build(&cfg).run();
    assert!(r.created() > 0);
    assert!(
        r.buffer_drops() + r.incoming_rejects() > 0,
        "single-slot buffers must churn"
    );
    assert!(r.delivery_ratio() > 0.0, "nothing delivered at all");
}

#[test]
fn warmup_excludes_early_messages_from_metrics() {
    let mut cfg = presets::smoke();
    cfg.duration_secs = 2000.0;
    cfg.seed = 3;
    let cold = World::build(&cfg).run();

    let mut warm_cfg = cfg.clone();
    warm_cfg.warmup_secs = 600.0;
    let warm = World::build(&warm_cfg).run();

    // Warm-up removes roughly 600/2000 of the generated messages
    // from the count, while the simulation itself is unchanged.
    assert!(warm.created() < cold.created());
    assert!(warm.created() > 0);
    assert!(warm.delivered() <= warm.created());
    // Transmissions of uncounted messages are excluded too, so the
    // overhead ratio stays well-defined (not inflated by ghosts).
    assert!(warm.transmissions() < cold.transmissions());
    // With warmup = 0 the default behaviour is bit-identical to the
    // paper configuration.
    let zero = World::build(&cfg).run();
    assert_eq!(zero.created(), cold.created());
    assert_eq!(zero.transmissions(), cold.transmissions());
}

#[test]
#[should_panic(expected = "warm-up must lie within the run")]
fn warmup_longer_than_run_rejected() {
    let mut cfg = presets::smoke();
    cfg.warmup_secs = cfg.duration_secs + 1.0;
    cfg.validate();
}

#[test]
fn step_until_equals_one_shot_run() {
    let mut cfg = presets::smoke();
    cfg.duration_secs = 1000.0;
    cfg.seed = 8;
    let oneshot = World::build(&cfg).run();

    let mut stepped = World::build(&cfg);
    let mut total_events = 0;
    for k in 1..=10 {
        total_events += stepped.step_until(SimTime::from_secs(k as f64 * 100.0));
        assert_eq!(stepped.now(), SimTime::from_secs(k as f64 * 100.0));
    }
    assert!(total_events > 0);
    assert_eq!(stepped.report().created(), oneshot.created());
    assert_eq!(stepped.report().delivered(), oneshot.delivered());
    assert_eq!(stepped.report().transmissions(), oneshot.transmissions());
    // Inspection accessors are consistent.
    let buffered: usize = (0..cfg.n_nodes)
        .map(|i| stepped.buffered_count(NodeId(i as u32)))
        .sum();
    assert!(buffered > 0, "no copies live at the end of a busy run");
    let _ = stepped.live_contacts();
}

#[test]
fn poisson_traffic_matches_uniform_rate() {
    use crate::config::TrafficModel;
    let run = |traffic: TrafficModel| {
        let mut cfg = presets::smoke();
        cfg.duration_secs = 3000.0;
        cfg.traffic = traffic;
        cfg.seed = 6;
        World::build(&cfg).run().created()
    };
    let uniform = run(TrafficModel::Uniform) as f64;
    let poisson = run(TrafficModel::Poisson) as f64;
    // Same mean rate: counts within ~25% of each other.
    assert!(
        (uniform - poisson).abs() / uniform < 0.25,
        "uniform {uniform} vs poisson {poisson}"
    );
}

#[test]
fn timeseries_records_buffer_pressure() {
    let mut cfg = presets::smoke();
    cfg.duration_secs = 1500.0;
    cfg.gen_interval = (8.0, 12.0);
    let mut world = World::build(&cfg);
    world.enable_timeseries(30.0);
    let (report, ts) = world.run_with_timeseries();
    assert!(report.created() > 0);
    assert!(ts.len() >= 1500 / 30, "too few samples: {}", ts.len());
    // Occupancy must become non-trivial under this load.
    assert!(ts.peak_mean_occupancy() > 0.1);
    // Samples are time-ordered and within the run.
    for w in ts.points().windows(2) {
        assert!(w[1].t > w[0].t);
    }
    assert!(ts.points().last().unwrap().t <= 1500.0);
    let csv = ts.to_csv();
    assert!(csv.lines().count() == ts.len() + 1);
}

#[test]
fn immunity_modes_cut_circulating_copies() {
    use crate::config::ImmunityMode;
    let run = |immunity: ImmunityMode| {
        let mut cfg = presets::smoke();
        cfg.duration_secs = 2000.0;
        cfg.policy = PolicyKind::Fifo;
        cfg.immunity = immunity;
        cfg.seed = 4;
        World::build(&cfg).run()
    };
    let none = run(ImmunityMode::None);
    let flood = run(ImmunityMode::OracleFlood);
    let gossip = run(ImmunityMode::AntipacketGossip);

    assert_eq!(none.immunity_purges(), 0, "paper mode must never purge");
    assert!(flood.immunity_purges() > 0, "oracle flood never purged");
    assert!(gossip.immunity_purges() > 0, "antipackets never purged");
    // Purging delivered messages frees bandwidth/buffers: overhead
    // must not increase.
    assert!(
        flood.overhead_ratio() <= none.overhead_ratio() + 1e-9,
        "oracle immunity raised overhead: {} vs {}",
        flood.overhead_ratio(),
        none.overhead_ratio()
    );
    // And no duplicate deliveries are possible under oracle flood.
    assert_eq!(flood.delivered_events(), flood.delivered());
}

#[test]
fn heterogeneous_message_sizes_run_with_knapsack() {
    let mut cfg = presets::smoke();
    cfg.duration_secs = 1500.0;
    cfg.message_size = Bytes::from_mb(0.2);
    cfg.message_size_max = Some(Bytes::from_mb(1.0));
    cfg.policy = PolicyKind::Knapsack;
    cfg.seed = 2;
    let r = World::build(&cfg).run();
    assert!(r.created() > 0);
    assert!(r.delivery_ratio() > 0.0, "knapsack delivered nothing");
}

#[test]
fn knapsack_matches_greedy_on_uniform_sizes_roughly() {
    // With the paper's uniform 0.5 MB messages the set-wise and
    // greedy rules should land in the same ballpark.
    let run = |policy: PolicyKind| {
        let mut cfg = presets::smoke();
        cfg.duration_secs = 1500.0;
        cfg.policy = policy;
        cfg.seed = 3;
        World::build(&cfg).run().delivery_ratio()
    };
    let knap = run(PolicyKind::Knapsack);
    let ttl = run(PolicyKind::TtlRatio);
    assert!(
        (knap - ttl).abs() < 0.15,
        "knapsack {knap} far from its greedy counterpart {ttl}"
    );
}

#[test]
#[should_panic(expected = "largest message must fit")]
fn oversized_message_range_rejected() {
    let mut cfg = presets::smoke();
    cfg.message_size_max = Some(Bytes::from_mb(50.0));
    cfg.validate();
}

#[test]
fn validated_smoke_run_is_clean_and_samples_estimators() {
    let mut cfg = presets::smoke();
    cfg.duration_secs = 1800.0;
    cfg.policy = PolicyKind::Sdsrp;
    let mut world = World::build(&cfg);
    world.enable_validation(dtn_validate::ValidateConfig::default());
    let (report, validation, _rec) = world.run_validated();
    assert!(report.created() > 0);
    assert!(
        validation.ok(),
        "invariant violations on a clean run:\n{}",
        validation.summary()
    );
    assert!(validation.sweeps > 0);
    assert!(validation.checks_run > 0);
    assert!(
        validation.estimator_m.samples > 0,
        "estimator oracle never sampled"
    );
    assert_eq!(
        validation.estimator_m.samples,
        validation.estimator_n.samples
    );
}

#[test]
fn validated_epidemic_run_skips_token_conservation() {
    let mut cfg = presets::smoke();
    cfg.duration_secs = 1200.0;
    cfg.routing = RoutingKind::Epidemic;
    cfg.policy = PolicyKind::Fifo;
    let mut world = World::build(&cfg);
    world.enable_validation(dtn_validate::ValidateConfig::default());
    assert!(!world.validator_mut().expect("enabled").conserves_tokens());
    let (report, validation, _rec) = world.run_validated();
    assert!(report.created() > 0);
    assert!(
        validation.ok(),
        "epidemic run flagged:\n{}",
        validation.summary()
    );
}

#[test]
fn seeded_corruption_is_detected_by_next_sweep() {
    let mut cfg = presets::smoke();
    cfg.duration_secs = 1200.0;
    let mut world = World::build(&cfg);
    world.enable_validation(dtn_validate::ValidateConfig::default());
    world.step_until(SimTime::from_secs(600.0));
    world
        .validator_mut()
        .expect("enabled")
        .corrupt_holder_bookkeeping();
    world.step_until(SimTime::from_secs(1200.0));
    let validation = world.take_validation_report().expect("enabled");
    assert!(
        validation
            .violations
            .iter()
            .any(|v| v.check == "holder_mismatch"),
        "seeded n_i corruption went undetected:\n{}",
        validation.summary()
    );
}

#[test]
fn validation_does_not_change_the_run() {
    let mut cfg = presets::smoke();
    cfg.duration_secs = 1500.0;
    cfg.policy = PolicyKind::Sdsrp;
    let plain = World::build(&cfg).run();
    let mut world = World::build(&cfg);
    world.enable_validation(dtn_validate::ValidateConfig::default());
    let (validated, validation, _rec) = world.run_validated();
    assert!(validation.ok(), "{}", validation.summary());
    assert_eq!(plain.created(), validated.created());
    assert_eq!(plain.delivered(), validated.delivered());
    assert_eq!(plain.transmissions(), validated.transmissions());
    assert_eq!(plain.buffer_drops(), validated.buffer_drops());
}

#[test]
fn hopcount_is_one_for_direct_routing() {
    let mut cfg = presets::smoke();
    cfg.duration_secs = 2400.0;
    cfg.routing = RoutingKind::Direct;
    cfg.policy = PolicyKind::Fifo;
    let report = World::build(&cfg).run();
    if report.delivered() > 0 {
        assert_eq!(report.avg_hopcount(), 1.0);
    }
}

// ------------------------------------------------------------------
// Thread-count determinism (the world-level guarantee; the full
// cross-scenario battery lives in tests/parallel_world.rs).
// ------------------------------------------------------------------

/// Full report equality between a serial world and a multi-threaded
/// one, on the smoke scenario.
#[test]
fn threaded_run_matches_serial_report() {
    let mut cfg = presets::smoke();
    cfg.duration_secs = 1200.0;
    cfg.policy = PolicyKind::Sdsrp;
    let serial = World::build(&cfg).run();
    for threads in [2, 4] {
        let mut world = World::build(&cfg);
        world.set_threads(threads);
        assert_eq!(world.threads(), threads);
        let r = world.run();
        assert_eq!(serial.created(), r.created(), "threads={threads}");
        assert_eq!(serial.delivered(), r.delivered(), "threads={threads}");
        assert_eq!(
            serial.transmissions(),
            r.transmissions(),
            "threads={threads}"
        );
        assert_eq!(serial.buffer_drops(), r.buffer_drops(), "threads={threads}");
        assert_eq!(
            serial.avg_latency(),
            r.avg_latency(),
            "threads={threads}: latency must be bit-identical"
        );
    }
}

/// `set_threads` is a runtime knob: flipping it mid-run (between
/// stepped windows) must not change results either, because every
/// parallel reduction is order-identical to the serial loop.
#[test]
fn thread_count_flipped_mid_run_is_identical() {
    let mut cfg = presets::smoke();
    cfg.duration_secs = 1000.0;
    cfg.seed = 11;
    let oneshot = World::build(&cfg).run();

    let mut stepped = World::build(&cfg);
    for (k, threads) in [(1, 1usize), (2, 4), (3, 2), (4, 8), (5, 1)] {
        stepped.set_threads(threads);
        stepped.step_until(SimTime::from_secs(k as f64 * 200.0));
    }
    assert_eq!(stepped.report().created(), oneshot.created());
    assert_eq!(stepped.report().delivered(), oneshot.delivered());
    assert_eq!(stepped.report().transmissions(), oneshot.transmissions());
}

/// Radio-down sentinel parking keeps mobility RNG streams on
/// schedule: a crashed-then-rebooted node rejoins at the position it
/// would have had anyway.
#[test]
fn faulted_threaded_run_matches_serial() {
    let mut cfg = presets::smoke();
    cfg.duration_secs = 1500.0;
    cfg.seed = 13;
    cfg.faults = crate::config::FaultPlan {
        crash_rate_per_hour: 2.0,
        reboot_secs: 120.0,
        blackout_rate_per_hour: 2.0,
        blackout_secs: 60.0,
        transfer_abort_prob: 0.05,
        clock_skew_max_secs: 1.0,
    };
    let serial = World::build(&cfg).run();
    let mut world = World::build(&cfg);
    world.set_threads(4);
    let threaded = world.run();
    assert_eq!(serial.created(), threaded.created());
    assert_eq!(serial.delivered(), threaded.delivered());
    assert_eq!(serial.transmissions(), threaded.transmissions());
    assert_eq!(serial.buffer_drops(), threaded.buffer_drops());
    assert_eq!(serial.aborted_transfers(), threaded.aborted_transfers());
}
