//! Transfer scheduling and application: candidate selection on idle
//! links, the `TransferComplete` handler, and the immunity purge paths.

use super::*;

impl World {
    /// Picks and starts the best transfer on an idle live link.
    pub(super) fn try_start_transfer(&mut self, pair: NodePair) {
        let Some(state) = self.links.get(&pair) else {
            return;
        };
        if state.in_flight.is_some() {
            return;
        }
        let Some(best) = self.best_candidate(pair) else {
            return;
        };
        let seq = self.next_transfer_seq;
        self.next_transfer_seq += 1;
        let size = self.catalog[best.msg.index()].size;
        let duration = self.cfg.link.transfer_time(size);
        let copies_at_start = self.nodes[best.from.index()]
            .buffer
            .get(&best.msg)
            .expect("candidate came from this buffer")
            .copies;
        self.links
            .get_mut(&pair)
            .expect("link checked above")
            .in_flight = Some(InFlight {
            seq,
            from: best.from,
            to: best.to,
            msg: best.msg,
            kind: best.kind,
            copies_at_start,
        });
        self.queue.push(
            self.now + duration,
            WorldEvent::TransferComplete { pair, seq },
        );
    }

    /// Enumerates eligible transfers in both directions of `pair` and
    /// returns the winner: deliveries first, then the sender's scheduling
    /// priority, ties broken deterministically.
    fn best_candidate(&mut self, pair: NodePair) -> Option<Candidate> {
        let now = self.now;
        let mut best: Option<Candidate> = None;
        for (s_id, r_id) in [(pair.lo(), pair.hi()), (pair.hi(), pair.lo())] {
            let (sender, receiver) = two_nodes(&mut self.nodes, s_id, r_id);
            let ctx = RoutingCtx {
                me: s_id,
                peer: r_id,
                now,
            };
            for copy in sender.buffer.values() {
                let msg = &self.catalog[copy.msg.index()];
                if msg.expired(now) {
                    continue;
                }
                if sender.acked.contains(&msg.id) {
                    continue; // dead message awaiting purge
                }
                let peer_has = receiver.has(msg.id)
                    || receiver.delivered.contains(&msg.id)
                    || receiver.acked.contains(&msg.id);
                let oi = self.oracle.as_ref().map(|o| o.of(msg.id));
                let view = make_view(msg, copy, now, oi);
                let Some(kind) = sender.routing.eligibility(&ctx, &view, peer_has) else {
                    continue;
                };
                let is_delivery = matches!(kind, TransferKind::Delivery);
                // Receivers refuse messages on their dropped list (paper
                // Section III-C); deliveries are never refused. Each
                // `(receiver, message)` refusal is reported once even
                // though the candidate recurs every scheduling pass.
                if !is_delivery && !receiver.policy.accepts(now, msg.id) {
                    if self.refused_seen.insert((r_id, msg.id)) {
                        self.report.on_refused_receipt();
                        let mid = msg.id.0;
                        self.recorder.record(|| SimEvent::Refused {
                            t: now.as_secs(),
                            msg: mid,
                            node: r_id.0,
                            from: s_id.0,
                        });
                    }
                    continue;
                }
                let priority = sender.policy.send_priority(now, &view);
                let cand = Candidate {
                    from: s_id,
                    to: r_id,
                    msg: msg.id,
                    kind,
                    is_delivery,
                    priority,
                };
                best = Some(match best.take() {
                    None => cand,
                    Some(cur) => pick_better(cur, cand),
                });
            }
        }
        best
    }

    pub(super) fn on_transfer_complete(&mut self, pair: NodePair, seq: u64) {
        // Stale completion (link re-established or different transfer)?
        let Some(state) = self.links.get_mut(&pair) else {
            return;
        };
        match state.in_flight {
            Some(f) if f.seq == seq => {
                state.in_flight = None;
                // Mid-transfer abort injection: the RNG exists only when
                // `transfer_abort_prob > 0`, and is consulted once per
                // genuinely completing transfer. Nothing has been
                // applied yet, so an abort leaves both buffers exactly
                // as a mobility-caused abort would.
                let injected_abort = match self.abort_rng.as_mut() {
                    Some(rng) => rng.gen_bool(self.cfg.faults.transfer_abort_prob),
                    None => false,
                };
                if injected_abort {
                    self.report.on_aborted_transfer();
                    if let Some(v) = self.validator.as_mut() {
                        v.on_fault_abort();
                    }
                    let t = self.now.as_secs();
                    let (msg, from, to) = (f.msg.0, f.from.0, f.to.0);
                    self.recorder
                        .record(|| SimEvent::TransferAborted { t, msg, from, to });
                } else {
                    self.apply_transfer(f);
                }
            }
            _ => return,
        }
        // Link is free again: keep the contact busy, and buffers changed
        // so other idle links of both endpoints may have work now.
        self.try_start_transfer(pair);
        self.rearm_idle_links(Some(pair.lo()));
        self.rearm_idle_links(Some(pair.hi()));
    }

    fn apply_transfer(&mut self, f: InFlight) {
        let now = self.now;
        let msg = self.catalog[f.msg.index()];
        // The sender may have lost the copy mid-transfer (eviction or
        // TTL): the transfer never really happened.
        if !self.nodes[f.from.index()].has(f.msg) || msg.expired(now) {
            self.report.on_aborted_transfer();
            return;
        }
        // The receiver may have obtained the message from elsewhere (or
        // been delivered to) meanwhile: drop the duplicate silently.
        {
            let receiver = &self.nodes[f.to.index()];
            if receiver.has(f.msg) || receiver.delivered.contains(&f.msg) {
                return;
            }
        }

        match f.kind {
            TransferKind::Delivery => {
                if !self.uncounted.contains(&f.msg) {
                    self.report.on_transmission();
                    self.observe_transfer_bytes(msg.size);
                }
                let hops;
                {
                    let sender = &mut self.nodes[f.from.index()];
                    let copy = sender.buffer.get_mut(&f.msg).expect("checked above");
                    copy.forward_count += 1;
                    hops = copy.hops + 1;
                }
                let receiver = &mut self.nodes[f.to.index()];
                receiver.delivered.insert(f.msg);
                if let Some(v) = self.validator.as_mut() {
                    v.on_delivered(f.msg, f.to);
                }
                if !self.uncounted.contains(&f.msg) {
                    let first = !self.report.is_delivered(f.msg);
                    self.report.on_delivered(f.msg, hops, msg.created, now);
                    let latency = now.as_secs() - msg.created.as_secs();
                    if let Some(m) = self.metrics.as_ref() {
                        self.recorder
                            .metrics_mut()
                            .observe(m.delivery_latency_secs, latency);
                    }
                    self.recorder.record(|| SimEvent::Delivered {
                        t: now.as_secs(),
                        msg: f.msg.0,
                        from: f.from.0,
                        hops,
                        latency,
                        first,
                    });
                }
                if let Some(o) = self.oracle.as_mut() {
                    o.seen[f.msg.index()].insert(f.to);
                }
                match self.cfg.immunity {
                    ImmunityMode::None => {}
                    ImmunityMode::OracleFlood => self.purge_everywhere(f.msg),
                    ImmunityMode::AntipacketGossip => {
                        // The destination mints the antipacket; it
                        // spreads on future contacts.
                        self.nodes[f.to.index()].acked.insert(f.msg);
                        // The delivering node learns immediately (it
                        // just talked to the destination).
                        self.nodes[f.from.index()].acked.insert(f.msg);
                        self.purge_acked(f.from);
                    }
                }
            }
            TransferKind::Replicate {
                sender_keeps,
                receiver_gets,
            } => {
                // The split was derived from the sender's token count at
                // schedule time. If another link completed a split of the
                // same message mid-flight, applying this one would
                // counterfeit copy tokens — abort like any other
                // mid-flight invalidation.
                let copies_now = self.nodes[f.from.index()]
                    .buffer
                    .get(&f.msg)
                    .expect("checked above")
                    .copies;
                if copies_now != f.copies_at_start {
                    self.report.on_aborted_transfer();
                    return;
                }
                if !self.uncounted.contains(&f.msg) {
                    self.report.on_transmission();
                    self.observe_transfer_bytes(msg.size);
                    let copies = receiver_gets.max(1);
                    self.recorder.record(|| SimEvent::Replicated {
                        t: now.as_secs(),
                        msg: f.msg.0,
                        from: f.from.0,
                        to: f.to.0,
                        copies,
                    });
                }
                // Reuse a pooled spray-history allocation for the
                // receiver's copy instead of cloning a fresh one on
                // every replication (the former per-contact hot-path
                // allocation).
                let mut spray = self.spray_pool.pop().unwrap_or_default();
                let stamp = self.skewed_now(f.from);
                let (incoming, before) = {
                    let sender = &mut self.nodes[f.from.index()];
                    let copy = sender.buffer.get_mut(&f.msg).expect("checked above");
                    let before = copy.copies;
                    let splits_tokens = sender_keeps < copy.copies;
                    copy.copies = sender_keeps.max(1);
                    copy.forward_count += 1;
                    if splits_tokens {
                        // A genuine binary-spray event: both halves record
                        // the timestamp (paper Fig. 6) — as read from the
                        // sender's (possibly skewed) local clock.
                        copy.spray_times.push(stamp);
                    }
                    spray.clear();
                    spray.extend_from_slice(&copy.spray_times);
                    let incoming = BufferedCopy {
                        msg: f.msg,
                        received: now,
                        copies: receiver_gets.max(1),
                        hops: copy.hops + 1,
                        forward_count: 0,
                        spray_times: spray,
                    };
                    (incoming, before)
                };
                if let Some(v) = self.validator.as_mut() {
                    v.on_replicate_split(
                        now,
                        f.msg,
                        f.from,
                        before,
                        sender_keeps.max(1),
                        receiver_gets.max(1),
                    );
                }
                self.admit_copy(f.to, f.msg, incoming);
            }
            TransferKind::Handoff => {
                if !self.uncounted.contains(&f.msg) {
                    self.report.on_transmission();
                    self.observe_transfer_bytes(msg.size);
                }
                let incoming = {
                    let sender = &mut self.nodes[f.from.index()];
                    let mut copy = sender.remove_copy(f.msg, msg.size);
                    if let Some(o) = self.oracle.as_mut() {
                        o.holders[f.msg.index()] = o.holders[f.msg.index()].saturating_sub(1);
                    }
                    copy.received = now;
                    copy.hops += 1;
                    copy
                };
                if let Some(v) = self.validator.as_mut() {
                    v.on_handoff_out(f.msg);
                }
                if !self.uncounted.contains(&f.msg) {
                    let copies = incoming.copies;
                    self.recorder.record(|| SimEvent::Replicated {
                        t: now.as_secs(),
                        msg: f.msg.0,
                        from: f.from.0,
                        to: f.to.0,
                        copies,
                    });
                }
                self.admit_copy(f.to, f.msg, incoming);
            }
        }
    }

    /// Removes every buffered copy of `msg` network-wide (idealised
    /// VACCINE immunity).
    fn purge_everywhere(&mut self, msg: MessageId) {
        let size = self.catalog[msg.index()].size;
        let now = self.now;
        for node in &mut self.nodes {
            if node.has(msg) {
                let removed = node.remove_copy(msg, size);
                self.report.on_immunity_purge();
                let holder = node.id.0;
                let policy = node.policy.name();
                self.recorder.record(|| SimEvent::Dropped {
                    t: now.as_secs(),
                    msg: msg.0,
                    node: holder,
                    policy,
                    reason: DropReason::ImmunityPurge,
                });
                if let Some(o) = self.oracle.as_mut() {
                    o.holders[msg.index()] = o.holders[msg.index()].saturating_sub(1);
                }
                if let Some(v) = self.validator.as_mut() {
                    v.on_immunity_purge(msg, removed.copies);
                }
                recycle_spray(&mut self.spray_pool, removed);
            }
            node.acked.insert(msg);
        }
    }

    /// Purges copies of acknowledged messages from one node's buffer.
    pub(super) fn purge_acked(&mut self, node_id: NodeId) {
        let now = self.now;
        let node = &mut self.nodes[node_id.index()];
        let doomed: Vec<MessageId> = node
            .buffer
            .keys()
            .copied()
            .filter(|id| node.acked.contains(id))
            .collect();
        for id in doomed {
            let size = self.catalog[id.index()].size;
            let removed = node.remove_copy(id, size);
            self.report.on_immunity_purge();
            let policy = node.policy.name();
            self.recorder.record(|| SimEvent::Dropped {
                t: now.as_secs(),
                msg: id.0,
                node: node_id.0,
                policy,
                reason: DropReason::ImmunityPurge,
            });
            if let Some(o) = self.oracle.as_mut() {
                o.holders[id.index()] = o.holders[id.index()].saturating_sub(1);
            }
            if let Some(v) = self.validator.as_mut() {
                v.on_immunity_purge(id, removed.copies);
            }
            recycle_spray(&mut self.spray_pool, removed);
        }
    }

    /// Feeds one counted transmission's size into the `transfer_bytes`
    /// histogram when metrics are attached.
    fn observe_transfer_bytes(&mut self, size: dtn_core::units::Bytes) {
        if let Some(m) = self.metrics.as_ref() {
            self.recorder
                .metrics_mut()
                .observe(m.transfer_bytes, size.as_u64() as f64);
        }
    }
}
