//! Structure-of-arrays node state for the parallel world phases.
//!
//! The per-tick hot loops (movement integration, sentinel parking,
//! contact-grid rebuild) stream over dense per-node arrays rather than
//! chasing through `Node`. Keeping them in one struct makes the
//! split-borrow pattern explicit: a phase borrows exactly the arrays it
//! touches, and the fork-join pool hands each worker a contiguous band
//! of every array.

use dtn_core::geometry::Point2;
use dtn_core::pool::Pool;
use dtn_core::time::SimTime;
use dtn_mobility::model::Mobility;

/// Hot per-node state, one entry per node, indexed by `NodeId`.
pub struct NodeArrays {
    /// Analytic trajectory samplers (each owns its per-node RNG
    /// substream, which is what makes parallel sampling order-free).
    pub(super) mobility: Vec<Box<dyn Mobility>>,
    /// Positions sampled at the current tick.
    pub(super) positions: Vec<Point2>,
    /// Per-node radio-down depth: >0 means the node is invisible to
    /// contact detection. A counter (not a bool) because a crash window
    /// and a blackout window can overlap.
    pub(super) radio_off: Vec<u32>,
    /// Per-node clock-skew offsets applied to spray timestamps; empty
    /// when skew injection is off (the zero-fault fast path).
    pub(super) clock_skew: Vec<f64>,
}

impl NodeArrays {
    /// Assembles the arrays for `mobility.len()` nodes. `clock_skew` is
    /// either empty (no skew injection) or one offset per node.
    pub(super) fn new(mobility: Vec<Box<dyn Mobility>>, clock_skew: Vec<f64>) -> NodeArrays {
        let n = mobility.len();
        NodeArrays {
            mobility,
            positions: vec![Point2::default(); n],
            radio_off: vec![0; n],
            clock_skew,
        }
    }

    /// Node count.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Whether the world has zero nodes (never true for a validated
    /// scenario; present for API completeness).
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// The movement phase: samples every node's trajectory at `now`
    /// into `positions`, parking radio-down nodes at distinct far-away
    /// sentinels so contact detection cannot see them (or each other:
    /// sentinels are 1e9 m apart, far beyond any radio range). Mobility
    /// is still sampled first, so trajectories stay on schedule and
    /// nodes rejoin at their true position.
    ///
    /// Embarrassingly parallel: node `i` writes only `positions[i]` and
    /// draws only from its own mobility RNG substream, so fanning the
    /// index space out across `pool` in contiguous bands is
    /// bit-identical to the serial loop at any thread count.
    pub(super) fn sample_movement(&mut self, now: SimTime, pool: &Pool) {
        let radio_off = &self.radio_off;
        pool.zip_for_each(&mut self.mobility, &mut self.positions, |offset, ms, ps| {
            for (k, (m, p)) in ms.iter_mut().zip(ps.iter_mut()).enumerate() {
                let i = offset + k;
                *p = if radio_off[i] > 0 {
                    m.position_at(now);
                    Point2::new(-1.0e12 - i as f64 * 1.0e9, -1.0e12)
                } else {
                    m.position_at(now)
                };
            }
        });
    }
}
