//! Fault injection handlers: crashes, reboots, radio blackouts, and
//! the clock-skew view. The schedules themselves are precomputed in
//! `World::build` from dedicated FAULTS-stream substreams.

use super::*;

impl World {
    /// Forces every live contact of `node` down through the normal
    /// [`World::on_contact_down`] path (aborting in-flight transfers
    /// the same way mobility would).
    fn force_contacts_down(&mut self, node: NodeId) {
        let mut events = std::mem::take(&mut self.scratch_events);
        events.clear();
        self.tracker.drop_node(node, self.now, &mut events);
        for ev in &events {
            if let Some(trace) = self.contact_trace.as_mut() {
                trace.record(*ev);
            }
            if let ContactEvent::Down { pair, .. } = *ev {
                self.on_contact_down(pair);
            }
        }
        self.scratch_events = events;
    }

    /// Injected crash: the radio dies, every buffered copy (and its
    /// spray tokens) is destroyed, and volatile protocol state — the
    /// buffer policy's estimators/dropped lists and the routing
    /// protocol's timers — reboots cold. Durable application state
    /// (`delivered`, `acked`) survives, as would anything persisted to
    /// stable storage on a real node. Report counters are untouched:
    /// fault counts flow only through telemetry and the validator's
    /// fault ledger.
    pub(super) fn on_node_crash(&mut self, node: NodeId) {
        self.soa.radio_off[node.index()] += 1;
        self.force_contacts_down(node);

        let now = self.now;
        let doomed: Vec<MessageId> = self.nodes[node.index()].buffer.keys().copied().collect();
        let wiped = doomed.len() as u64;
        for id in doomed {
            let size = self.catalog[id.index()].size;
            let removed = self.nodes[node.index()].remove_copy(id, size);
            if let Some(o) = self.oracle.as_mut() {
                o.holders[id.index()] = o.holders[id.index()].saturating_sub(1);
            }
            if let Some(v) = self.validator.as_mut() {
                v.on_crash_wipe(id, removed.copies);
            }
            recycle_spray(&mut self.spray_pool, removed);
        }
        let n = self.nodes[node.index()].buffered_count();
        debug_assert_eq!(n, 0, "crash wipe left copies behind");
        self.nodes[node.index()].policy.on_node_reset(now);
        self.nodes[node.index()].routing = self.cfg.routing.build();
        if let Some(v) = self.validator.as_mut() {
            v.on_node_crashed(node);
        }
        let (t, id) = (now.as_secs(), node.0);
        self.recorder
            .record(|| SimEvent::NodeCrashed { t, node: id, wiped });
    }

    /// Injected reboot: the radio comes back; contacts re-form on the
    /// next tick when the node's true position is back in range.
    pub(super) fn on_node_reboot(&mut self, node: NodeId) {
        self.soa.radio_off[node.index()] = self.soa.radio_off[node.index()].saturating_sub(1);
        let (t, id) = (self.now.as_secs(), node.0);
        self.recorder
            .record(|| SimEvent::NodeRebooted { t, node: id });
    }

    /// Injected blackout: the radio goes dark but all state survives —
    /// the node simply vanishes from contact detection for the window.
    pub(super) fn on_blackout_start(&mut self, node: NodeId) {
        self.soa.radio_off[node.index()] += 1;
        self.force_contacts_down(node);
        if let Some(v) = self.validator.as_mut() {
            v.on_blackout(node);
        }
        let (t, id) = (self.now.as_secs(), node.0);
        self.recorder
            .record(|| SimEvent::BlackoutStarted { t, node: id });
    }

    /// End of a blackout window.
    pub(super) fn on_blackout_end(&mut self, node: NodeId) {
        self.soa.radio_off[node.index()] = self.soa.radio_off[node.index()].saturating_sub(1);
        let (t, id) = (self.now.as_secs(), node.0);
        self.recorder
            .record(|| SimEvent::BlackoutEnded { t, node: id });
    }

    /// Whether `node`'s radio is currently down (crashed or blacked
    /// out). Inspection accessor for tests and step-wise drivers.
    pub fn node_is_down(&self, node: NodeId) -> bool {
        self.soa.radio_off[node.index()] > 0
    }

    /// `now` as read by `node`'s local clock: the true time plus the
    /// node's injected skew offset, clamped non-negative. Identity (and
    /// allocation/branch-free beyond one `is_empty`) when skew
    /// injection is off. Only spray timestamps go through this —
    /// skew models mis-set device clocks corrupting the Eq. 15
    /// timestamp chain, not a relativistic simulator.
    pub(super) fn skewed_now(&self, node: NodeId) -> SimTime {
        if self.soa.clock_skew.is_empty() {
            return self.now;
        }
        SimTime::from_secs((self.now.as_secs() + self.soa.clock_skew[node.index()]).max(0.0))
    }
}
