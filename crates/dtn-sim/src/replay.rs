//! Deterministic replay and differential harnesses.
//!
//! A [`dtn_telemetry::RunManifest`] with an embedded config is a
//! complete, self-contained record of one run: [`replay_manifest`]
//! rebuilds the world from it and asserts the re-run reproduces the
//! original manifest bit-for-bit (modulo wall-clock time and ring
//! capacity, which are not part of the simulation). The differential
//! harnesses cross-check the simulator against itself: the same sweep
//! on different thread counts must agree exactly, and different buffer
//! policies on the same scenario must see identical generation and
//! contact streams (policies decide drops, not workload).

use crate::config::{PolicyKind, ScenarioConfig};
use crate::report::Report;
use crate::sweep::{run_sweep, SweepSpec};
use crate::world::World;
use dtn_telemetry::{hash_config_json, EventTotals, Recorder, RunManifest};
use dtn_validate::{ReportFingerprint, ValidateConfig};

/// Gauge name whose presence in a manifest's metrics snapshot marks the
/// run as validated (so the replay enables validation too — the
/// validator emits events and metrics that must match).
const VALIDATION_MARKER_GAUGE: &str = "estimator_m_mean_rel_err";

/// Ring capacity used for replay recorders. Only the ring's
/// `overwritten` counter depends on capacity and it is neutralised
/// before diffing, so any value works; this matches the CLI default.
const REPLAY_RING_CAPACITY: usize = 4096;

/// Builds the provenance manifest for a finished run, embedding the
/// canonical config JSON so the manifest alone suffices to replay it.
pub fn manifest_for_run(
    cfg: &ScenarioConfig,
    report: &Report,
    recorder: &Recorder,
    wall_clock_secs: f64,
) -> RunManifest {
    let config_json = serde_json::to_string(cfg).expect("config serialises");
    RunManifest {
        scenario: cfg.name.clone(),
        config_hash: hash_config_json(&config_json),
        config: Some(config_json),
        seed: cfg.seed,
        policy: cfg.policy.label().to_string(),
        routing: format!("{:?}", cfg.routing),
        sim_duration_secs: cfg.duration_secs,
        wall_clock_secs,
        created: report.created(),
        delivered: report.delivered(),
        dropped: report.buffer_drops() + report.incoming_rejects(),
        events: recorder.totals().clone(),
        events_recorded: recorder.totals().total(),
        ring_overwritten: recorder.ring().overwritten(),
        metrics: recorder.metrics().snapshot(),
    }
}

/// Integer-only digest of a run, for golden snapshots and replay
/// comparison. Lives here (not in `dtn-validate`) because the
/// fingerprint is built *from* a [`Report`], which `dtn-validate`
/// cannot depend on.
pub fn fingerprint(report: &Report, totals: &EventTotals) -> ReportFingerprint {
    ReportFingerprint {
        created: report.created(),
        transmissions: report.transmissions(),
        delivered_events: report.delivered_events(),
        delivered_unique: report.delivered(),
        buffer_drops: report.buffer_drops(),
        incoming_rejects: report.incoming_rejects(),
        expirations: report.expirations(),
        aborted_transfers: report.aborted_transfers(),
        refused_receipts: report.refused_receipts(),
        immunity_purges: report.immunity_purges(),
        delivery_ratio_micro: ReportFingerprint::scale(report.delivery_ratio(), 1e6),
        overhead_milli: ReportFingerprint::scale(report.overhead_ratio(), 1e3),
        avg_hopcount_milli: ReportFingerprint::scale(report.avg_hopcount(), 1e3),
        // Zero-delivery runs fingerprint as 0 ms, exactly as the old
        // `0.0` sentinel did — the digest stays bit-identical.
        avg_latency_milli: ReportFingerprint::scale(report.avg_latency().unwrap_or(0.0), 1e3),
        events: totals.clone(),
    }
}

/// Why a manifest could not be replayed.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplayError {
    /// The manifest predates replay support and carries no config.
    MissingConfig,
    /// The embedded config does not hash to `config_hash` — the
    /// manifest was tampered with or corrupted in transit.
    HashMismatch {
        /// Hash the manifest claims.
        expected: String,
        /// Hash of the config actually embedded.
        actual: String,
    },
    /// The embedded config JSON failed to parse.
    BadConfig(String),
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::MissingConfig => {
                write!(f, "manifest has no embedded config (pre-replay manifest?)")
            }
            ReplayError::HashMismatch { expected, actual } => write!(
                f,
                "embedded config hashes to {actual}, manifest claims {expected}"
            ),
            ReplayError::BadConfig(e) => write!(f, "embedded config does not parse: {e}"),
        }
    }
}

/// Result of replaying a manifest.
#[derive(Debug)]
pub struct ReplayOutcome {
    /// Manifest the re-run produced (wall clock and ring-overwritten
    /// neutralised to the original's values before diffing).
    pub manifest: RunManifest,
    /// The re-run's report.
    pub report: Report,
    /// True when the re-run reproduced the original exactly.
    pub identical: bool,
    /// `"path: original -> replay"` lines for every differing field.
    pub diff: Vec<String>,
}

/// Re-runs the scenario recorded in `original` and compares the
/// resulting manifest field-by-field. The simulator is deterministic,
/// so on an unmodified build the diff must be empty.
pub fn replay_manifest(original: &RunManifest) -> Result<ReplayOutcome, ReplayError> {
    let config_json = original
        .config
        .as_deref()
        .ok_or(ReplayError::MissingConfig)?;
    let actual = hash_config_json(config_json);
    if actual != original.config_hash {
        return Err(ReplayError::HashMismatch {
            expected: original.config_hash.clone(),
            actual,
        });
    }
    let cfg: ScenarioConfig =
        serde_json::from_str(config_json).map_err(|e| ReplayError::BadConfig(format!("{e:?}")))?;

    let mut world = World::build(&cfg);
    world.attach_recorder(Recorder::enabled(REPLAY_RING_CAPACITY));
    let was_validated = original
        .metrics
        .gauges
        .iter()
        .any(|g| g.name == VALIDATION_MARKER_GAUGE);
    if was_validated {
        world.enable_validation(ValidateConfig::default());
    }
    let (report, recorder) = world.run_with_recorder();

    let mut manifest = manifest_for_run(&cfg, &report, &recorder, 0.0);
    // Wall clock is not simulation state; ring overwrites depend on the
    // original run's ring capacity, which the manifest does not record.
    manifest.wall_clock_secs = original.wall_clock_secs;
    manifest.ring_overwritten = original.ring_overwritten;

    let diff = original.diff(&manifest);
    Ok(ReplayOutcome {
        identical: diff.is_empty(),
        report,
        diff,
        manifest,
    })
}

/// Runs `spec` on `threads_a` and `threads_b` worker threads and
/// returns one line per differing cell — empty when the sweep is
/// thread-count invariant, as it must be (runs are independent and
/// deterministic; threading only schedules them).
pub fn differential_thread_counts(
    spec: &SweepSpec,
    threads_a: usize,
    threads_b: usize,
) -> Vec<String> {
    let a = run_sweep(spec, threads_a);
    let b = run_sweep(spec, threads_b);
    let mut out = Vec::new();
    if a.len() != b.len() {
        out.push(format!(
            "cell count: {} ({threads_a} threads) vs {} ({threads_b} threads)",
            a.len(),
            b.len()
        ));
        return out;
    }
    for (i, (ca, cb)) in a.iter().zip(b.iter()).enumerate() {
        if ca != cb {
            out.push(format!(
                "cell {i} ({}, {}): {} -> {}",
                ca.axis_label,
                ca.policy,
                serde_json::to_string(ca).unwrap_or_else(|_| "?".into()),
                serde_json::to_string(cb).unwrap_or_else(|_| "?".into()),
            ));
        }
    }
    out
}

/// Runs `cfg` once with `world_threads` intra-run worker threads and
/// returns the run's integer fingerprint. The building block of the
/// thread-count differential battery: the parallel phases reduce in
/// stable node/band order, so the fingerprint must be bit-identical at
/// any thread count.
pub fn fingerprint_at_threads(cfg: &ScenarioConfig, world_threads: usize) -> ReportFingerprint {
    let mut world = World::build(cfg);
    world.set_threads(world_threads);
    world.attach_recorder(Recorder::enabled(16));
    let (report, recorder) = world.run_with_recorder();
    fingerprint(&report, recorder.totals())
}

/// Runs `cfg` once per entry of `thread_counts` and cross-checks every
/// fingerprint against the first. Returns one line per differing field
/// (prefixed with the offending thread count) — empty when the world is
/// thread-count invariant, as the determinism contract requires.
pub fn differential_world_threads(cfg: &ScenarioConfig, thread_counts: &[usize]) -> Vec<String> {
    let mut out = Vec::new();
    let Some((&first, rest)) = thread_counts.split_first() else {
        return out;
    };
    let baseline = fingerprint_at_threads(cfg, first);
    for &threads in rest {
        let fp = fingerprint_at_threads(cfg, threads);
        for line in baseline.diff(&fp) {
            out.push(format!("threads {first} vs {threads}: {line}"));
        }
    }
    out
}

/// Workload totals that must be identical across buffer policies on the
/// same scenario: message generation and the contact process are driven
/// by seeded RNG streams independent of buffering decisions.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadTrace {
    /// Policy label the trace came from.
    pub policy: String,
    /// Messages created after warm-up (report counter).
    pub created: u64,
    /// `MessageGenerated` events.
    pub generated: u64,
    /// `ContactUp` events.
    pub contacts_up: u64,
    /// `ContactDown` events.
    pub contacts_down: u64,
}

/// Runs `base` once per policy and cross-checks that every policy saw
/// the same generation and contact streams. Returns one line per
/// disagreement (vs the first policy), empty when the workload is
/// policy-invariant.
pub fn differential_policies(base: &ScenarioConfig, policies: &[PolicyKind]) -> Vec<String> {
    let mut traces = Vec::new();
    for policy in policies {
        let mut cfg = base.clone();
        cfg.policy = *policy;
        let mut world = World::build(&cfg);
        world.attach_recorder(Recorder::enabled(16));
        let (report, recorder) = world.run_with_recorder();
        let totals = recorder.totals();
        traces.push(WorkloadTrace {
            policy: policy.label().to_string(),
            created: report.created(),
            generated: totals.generated,
            contacts_up: totals.contacts_up,
            contacts_down: totals.contacts_down,
        });
    }
    let mut out = Vec::new();
    let Some(first) = traces.first() else {
        return out;
    };
    for t in &traces[1..] {
        for (field, mine, theirs) in [
            ("created", first.created, t.created),
            ("generated", first.generated, t.generated),
            ("contacts_up", first.contacts_up, t.contacts_up),
            ("contacts_down", first.contacts_down, t.contacts_down),
        ] {
            if mine != theirs {
                out.push(format!(
                    "{field}: {mine} ({}) vs {theirs} ({})",
                    first.policy, t.policy
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::presets;

    fn quick_cfg() -> ScenarioConfig {
        let mut cfg = presets::smoke();
        cfg.duration_secs = 900.0;
        cfg
    }

    fn run_with_manifest(cfg: &ScenarioConfig) -> RunManifest {
        let mut world = World::build(cfg);
        world.attach_recorder(Recorder::enabled(REPLAY_RING_CAPACITY));
        let (report, recorder) = world.run_with_recorder();
        manifest_for_run(cfg, &report, &recorder, 1.25)
    }

    #[test]
    fn replay_reproduces_original_manifest() {
        let original = run_with_manifest(&quick_cfg());
        let outcome = replay_manifest(&original).unwrap();
        assert!(
            outcome.identical,
            "replay diverged:\n{}",
            outcome.diff.join("\n")
        );
        assert_eq!(outcome.manifest, original);
    }

    #[test]
    fn replay_rejects_missing_and_tampered_config() {
        let mut m = run_with_manifest(&quick_cfg());
        let saved = m.config.clone();
        m.config = None;
        assert!(matches!(
            replay_manifest(&m),
            Err(ReplayError::MissingConfig)
        ));
        m.config = saved.map(|c| c.replace("\"seed\":", "\"seed\": "));
        assert!(matches!(
            replay_manifest(&m),
            Err(ReplayError::HashMismatch { .. })
        ));
    }

    #[test]
    fn replay_detects_a_doctored_outcome() {
        let mut m = run_with_manifest(&quick_cfg());
        m.delivered += 1;
        let outcome = replay_manifest(&m).unwrap();
        assert!(!outcome.identical);
        assert!(outcome.diff.iter().any(|l| l.starts_with("delivered:")));
    }

    #[test]
    fn fingerprint_matches_report_counters() {
        let cfg = quick_cfg();
        let mut world = World::build(&cfg);
        world.attach_recorder(Recorder::enabled(16));
        let (report, recorder) = world.run_with_recorder();
        let fp = fingerprint(&report, recorder.totals());
        assert_eq!(fp.created, report.created());
        assert_eq!(fp.delivered_unique, report.delivered());
        assert_eq!(fp.events.generated, recorder.totals().generated);
        // Byte-stable: rendering twice gives identical bytes.
        assert_eq!(fp.to_canonical_json(), fp.to_canonical_json());
    }

    #[test]
    fn policies_share_generation_and_contact_streams() {
        let diffs = differential_policies(&quick_cfg(), &PolicyKind::paper_four());
        assert!(diffs.is_empty(), "workload diverged:\n{}", diffs.join("\n"));
    }
}
