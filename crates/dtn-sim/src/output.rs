//! Table/series output for the figure harnesses.
//!
//! Each of the paper's sub-figures is one "series table": an x-axis
//! (sweep points), one row per policy, one value per cell. The fig
//! binaries print these as aligned markdown (for humans) and CSV (for
//! plotting).

use crate::sweep::SweepCell;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// One metric extracted from a sweep, as a plottable table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeriesTable {
    /// Table title, e.g. "Fig. 8(a) delivery ratio vs initial copies".
    pub title: String,
    /// X-axis name.
    pub xlabel: String,
    /// X tick labels, in order.
    pub x: Vec<String>,
    /// `(legend label, one value per x tick)` rows.
    pub rows: Vec<(String, Vec<f64>)>,
}

/// The metric to extract from sweep cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Metric {
    /// Paper metric 1.
    DeliveryRatio,
    /// Paper metric 2.
    AvgHopcount,
    /// Paper metric 3.
    OverheadRatio,
    /// Supplementary: mean delivery latency.
    AvgLatency,
}

impl Metric {
    /// Human name.
    pub fn name(self) -> &'static str {
        match self {
            Metric::DeliveryRatio => "delivery ratio",
            Metric::AvgHopcount => "average hopcounts",
            Metric::OverheadRatio => "overhead ratio",
            Metric::AvgLatency => "average latency (s)",
        }
    }

    /// Extracts the metric from a cell. A cell with no latency data
    /// (zero deliveries in every run) yields NaN, which the renderers
    /// print as `—` / empty rather than a fake `0.0`.
    pub fn of(self, cell: &SweepCell) -> f64 {
        match self {
            Metric::DeliveryRatio => cell.delivery_ratio,
            Metric::AvgHopcount => cell.avg_hopcount,
            Metric::OverheadRatio => cell.overhead_ratio,
            Metric::AvgLatency => cell.avg_latency.unwrap_or(f64::NAN),
        }
    }
}

impl SeriesTable {
    /// Builds a table from sweep cells (which arrive axis-major, policy
    /// within axis — the order `run_sweep` produces).
    pub fn from_cells(title: &str, xlabel: &str, cells: &[SweepCell], metric: Metric) -> Self {
        let mut x: Vec<String> = Vec::new();
        let mut rows: Vec<(String, Vec<f64>)> = Vec::new();
        for cell in cells {
            if cell.axis_index == 0 {
                rows.push((cell.policy.clone(), Vec::new()));
            }
            if x.last() != Some(&cell.axis_label) && cell.axis_index == x.len() {
                x.push(cell.axis_label.clone());
            }
            let row = rows
                .iter_mut()
                .find(|(p, _)| *p == cell.policy)
                .expect("policy row exists");
            row.1.push(metric.of(cell));
        }
        SeriesTable {
            title: title.to_string(),
            xlabel: xlabel.to_string(),
            x,
            rows,
        }
    }

    /// Aligned markdown rendering.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {}", self.title);
        let _ = writeln!(out);
        let _ = write!(out, "| {} |", self.xlabel);
        for x in &self.x {
            let _ = write!(out, " {x} |");
        }
        let _ = writeln!(out);
        let _ = write!(out, "|---|");
        for _ in &self.x {
            let _ = write!(out, "---|");
        }
        let _ = writeln!(out);
        for (label, vals) in &self.rows {
            let _ = write!(out, "| {label} |");
            for v in vals {
                if v.is_nan() {
                    // No data (e.g. latency with zero deliveries).
                    let _ = write!(out, " — |");
                } else {
                    let _ = write!(out, " {v:.4} |");
                }
            }
            let _ = writeln!(out);
        }
        out
    }

    /// CSV rendering: header `x,<policy...>`, one line per x tick.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{}", csv_escape(&self.xlabel));
        for (label, _) in &self.rows {
            let _ = write!(out, ",{}", csv_escape(label));
        }
        let _ = writeln!(out);
        for (i, x) in self.x.iter().enumerate() {
            let _ = write!(out, "{}", csv_escape(x));
            for (_, vals) in &self.rows {
                let _ = write!(out, ",{}", vals.get(i).copied().unwrap_or(f64::NAN));
            }
            let _ = writeln!(out);
        }
        out
    }
}

fn csv_escape(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cells() -> Vec<SweepCell> {
        let mut v = Vec::new();
        for (ai, label) in [(0usize, "16"), (1, "32")] {
            for (policy, dr) in [("SprayAndWait", 0.4), ("SDSRP", 0.6)] {
                v.push(SweepCell {
                    axis_index: ai,
                    axis_label: label.to_string(),
                    axis_value: label.parse().unwrap(),
                    policy: policy.to_string(),
                    delivery_ratio: dr + ai as f64 * 0.01,
                    delivery_ratio_std: 0.0,
                    avg_hopcount: 2.0,
                    overhead_ratio: 5.0,
                    avg_latency: Some(100.0),
                    created: 600.0,
                    runs: 3,
                    violations: 0,
                    faults: "none".to_string(),
                });
            }
        }
        v
    }

    #[test]
    fn builds_series_table() {
        let t = SeriesTable::from_cells("T", "L", &cells(), Metric::DeliveryRatio);
        assert_eq!(t.x, vec!["16", "32"]);
        assert_eq!(t.rows.len(), 2);
        assert_eq!(t.rows[0].0, "SprayAndWait");
        assert_eq!(t.rows[0].1, vec![0.4, 0.4 + 0.01]);
        assert_eq!(t.rows[1].1, vec![0.6, 0.6 + 0.01]);
    }

    #[test]
    fn metric_extraction() {
        let c = &cells()[0];
        assert_eq!(Metric::DeliveryRatio.of(c), 0.4);
        assert_eq!(Metric::AvgHopcount.of(c), 2.0);
        assert_eq!(Metric::OverheadRatio.of(c), 5.0);
        assert_eq!(Metric::AvgLatency.of(c), 100.0);
        assert_eq!(Metric::DeliveryRatio.name(), "delivery ratio");
    }

    #[test]
    fn missing_latency_renders_as_dash() {
        let mut cs = cells();
        for c in &mut cs {
            c.avg_latency = None;
        }
        assert!(Metric::AvgLatency.of(&cs[0]).is_nan());
        let t = SeriesTable::from_cells("Fig X", "L", &cs, Metric::AvgLatency);
        let md = t.to_markdown();
        assert!(md.contains("| SDSRP | — | — |"));
        assert!(!md.contains("0.0000"));
    }

    #[test]
    fn markdown_shape() {
        let t = SeriesTable::from_cells("Fig X", "L", &cells(), Metric::DeliveryRatio);
        let md = t.to_markdown();
        assert!(md.contains("### Fig X"));
        assert!(md.contains("| L | 16 | 32 |"));
        assert!(md.contains("| SDSRP | 0.6000 | 0.6100 |"));
    }

    #[test]
    fn csv_shape() {
        let t = SeriesTable::from_cells("Fig X", "L", &cells(), Metric::OverheadRatio);
        let csv = t.to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("L,SprayAndWait,SDSRP"));
        assert_eq!(lines.next(), Some("16,5,5"));
    }

    #[test]
    fn csv_escaping() {
        assert_eq!(csv_escape("plain"), "plain");
        assert_eq!(csv_escape("a,b"), "\"a,b\"");
        assert_eq!(csv_escape("q\"q"), "\"q\"\"q\"");
    }
}
