//! The event-driven DTN world: mobility + contacts + routing + buffers.
//!
//! ## Event loop
//!
//! Three event kinds drive the simulation:
//!
//! * **Tick** (every `tick_secs`): sample analytic node trajectories,
//!   diff the in-range pair set into ContactUp/ContactDown, purge
//!   TTL-expired copies, and (re)start transfers on idle links.
//! * **Generate**: create a message at a random source for a random
//!   destination, pass it through the source's admission control, and
//!   schedule the next generation `U(lo, hi)` seconds later.
//! * **TransferComplete**: apply a finished transfer (delivery /
//!   replication / handoff), run the receiver's admission control
//!   (Algorithm 1's drop step), and start the next transfer on the link.
//!
//! ## Contact protocol
//!
//! On ContactUp both sides: exchange buffer-policy gossip (SDSRP dropped
//! lists) and routing gossip (Spray-and-Focus timers), then the link —
//! half-duplex, one transfer at a time — picks the best transfer among
//! both directions: deliverable messages first (ONE's rule), then the
//! sender's buffer-policy scheduling priority (paper Algorithm 1 line 7).

use crate::config::{ImmunityMode, RoutingKind, ScenarioConfig};
use crate::message::{BufferedCopy, Message};
use crate::node::{make_view, two_nodes, Node};
use crate::report::Report;
use dtn_buffer::policy::{plan_admission, AdmissionPlan, EvictionRank, PriorityCacheStats};
use dtn_core::event::EventQueue;
use dtn_core::geometry::Point2;
use dtn_core::ids::{MessageId, NodeId, NodePair};
use dtn_core::rng::{exponential, stream_rng, streams, substream_rng, uniform_range};
use dtn_core::time::{SimDuration, SimTime};
use dtn_mobility::model::Mobility;
use dtn_net::contact::{ContactEvent, ContactTracker};
use dtn_net::trace::ContactTrace;
use dtn_routing::protocol::{RoutingCtx, TransferKind};
use dtn_telemetry::{DropReason, Recorder, SimEvent};
use dtn_validate::{SweepOutcome, ValidateConfig, ValidationReport, Validator};
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::{HashMap, HashSet};

/// World events.
#[derive(Debug, Clone, Copy, PartialEq)]
enum WorldEvent {
    /// Movement / contact-detection tick.
    Tick,
    /// Generate one message.
    Generate,
    /// A transfer scheduled with sequence number `seq` finishes on
    /// `pair`.
    TransferComplete { pair: NodePair, seq: u64 },
    /// Injected fault: `node` crashes, wiping its volatile state.
    NodeCrash { node: NodeId },
    /// Injected fault: `node` comes back up after a crash.
    NodeReboot { node: NodeId },
    /// Injected fault: `node`'s radio goes dark (state intact).
    BlackoutStart { node: NodeId },
    /// Injected fault: `node`'s radio recovers.
    BlackoutEnd { node: NodeId },
}

/// An in-flight transfer on one link.
#[derive(Debug, Clone, Copy)]
struct InFlight {
    seq: u64,
    from: NodeId,
    to: NodeId,
    msg: MessageId,
    kind: TransferKind,
    /// The sender's copy-token count when the transfer was scheduled.
    /// A `Replicate` split is derived from this count; if another link
    /// completes a split of the same message first, applying this one
    /// would counterfeit tokens, so it aborts instead.
    copies_at_start: u32,
}

/// Per-live-contact link state.
#[derive(Debug, Default)]
struct LinkState {
    in_flight: Option<InFlight>,
}

/// Perfect global knowledge for the oracle ablation.
struct OracleState {
    /// Nodes (excluding the source) that have ever received each message.
    seen: Vec<HashSet<NodeId>>,
    /// Buffers currently holding each message.
    holders: Vec<u32>,
}

impl OracleState {
    fn of(&self, msg: MessageId) -> (u32, u32) {
        (
            self.seen[msg.index()].len() as u32,
            self.holders[msg.index()],
        )
    }
}

/// Metric handles registered on the recorder by
/// [`World::attach_recorder`].
struct WorldMetrics {
    events_processed: dtn_telemetry::CounterId,
    delivery_latency_secs: dtn_telemetry::HistogramId,
    transfer_bytes: dtn_telemetry::HistogramId,
    live_contacts: dtn_telemetry::GaugeId,
}

/// Metric handles registered when both a recorder and the validator
/// are attached.
struct ValidateMetrics {
    invariant_violations: dtn_telemetry::CounterId,
    estimator_m_rel_err: dtn_telemetry::HistogramId,
    estimator_n_rel_err: dtn_telemetry::HistogramId,
    estimator_m_mean_rel_err: dtn_telemetry::GaugeId,
    estimator_m_max_rel_err: dtn_telemetry::GaugeId,
    estimator_n_mean_rel_err: dtn_telemetry::GaugeId,
    estimator_n_max_rel_err: dtn_telemetry::GaugeId,
}

/// A transfer candidate considered for an idle link.
#[derive(Debug, Clone, Copy)]
struct Candidate {
    from: NodeId,
    to: NodeId,
    msg: MessageId,
    kind: TransferKind,
    is_delivery: bool,
    priority: f64,
}

/// The assembled simulation.
pub struct World {
    cfg: ScenarioConfig,
    nodes: Vec<Node>,
    mobility: Vec<Box<dyn Mobility>>,
    positions: Vec<Point2>,
    tracker: ContactTracker,
    links: HashMap<NodePair, LinkState>,
    queue: EventQueue<WorldEvent>,
    now: SimTime,
    traffic_rng: StdRng,
    catalog: Vec<Message>,
    report: Report,
    oracle: Option<OracleState>,
    next_transfer_seq: u64,
    /// Messages generated during warm-up: simulated but excluded from
    /// metrics.
    uncounted: HashSet<MessageId>,
    contact_trace: Option<ContactTrace>,
    recorder: Recorder,
    metrics: Option<WorldMetrics>,
    /// Invariant checker + estimator oracle; `None` (the default) costs
    /// one branch per hook site.
    validator: Option<Box<Validator>>,
    validate_metrics: Option<ValidateMetrics>,
    /// `(receiver, message)` pairs whose refusal was already reported —
    /// a refused candidate is re-examined on every scheduling pass.
    refused_seen: HashSet<(NodeId, MessageId)>,
    scratch_events: Vec<ContactEvent>,
    /// Reusable idle-pair buffer for [`Self::rearm_idle_links`] — the
    /// rearm sweep runs on every tick and twice per transfer completion,
    /// so its allocation is hoisted out of the hot path.
    scratch_idle: Vec<NodePair>,
    /// Recycled spray-timestamp vectors: replications pop one instead of
    /// allocating a fresh clone, removals push theirs back (bounded by
    /// [`SPRAY_POOL_CAP`]).
    spray_pool: Vec<Vec<SimTime>>,
    /// Per-node radio-down depth: >0 means the node is invisible to
    /// contact detection. A counter (not a bool) because a crash window
    /// and a blackout window can overlap.
    radio_off: Vec<u32>,
    /// Per-node clock-skew offsets applied to spray timestamps; empty
    /// when skew injection is off (the zero-fault fast path).
    clock_skew: Vec<f64>,
    /// RNG for mid-transfer abort injection; `None` (never consulted)
    /// when `transfer_abort_prob` is zero, so zero-fault runs draw
    /// nothing from the FAULTS stream.
    abort_rng: Option<StdRng>,
}

/// Upper bound on [`World::spray_pool`] — enough to cover the buffered
/// copies of a busy node without hoarding memory on large sweeps.
const SPRAY_POOL_CAP: usize = 64;

impl World {
    /// Builds a world from a validated scenario.
    pub fn build(cfg: &ScenarioConfig) -> World {
        let n = cfg.n_nodes;
        let seed = cfg.seed;
        let policy = cfg.policy;
        Self::build_with_policies(cfg, &mut |id| policy.build(id, n, seed))
    }

    /// Builds a world with a caller-supplied buffer policy per node —
    /// the extension point for policies outside
    /// [`PolicyKind`](crate::config::PolicyKind) (the scenario's own
    /// `policy` field is ignored). See `examples/custom_policy.rs`.
    pub fn build_with_policies(
        cfg: &ScenarioConfig,
        make_policy: &mut dyn FnMut(NodeId) -> Box<dyn dtn_buffer::policy::BufferPolicy>,
    ) -> World {
        cfg.validate();
        let mobility = dtn_mobility::build_fleet(&cfg.mobility, cfg.n_nodes, cfg.seed);
        let area = cfg.mobility.area();
        let tracker = ContactTracker::new(area, cfg.link.range);
        let nodes: Vec<Node> = NodeId::all(cfg.n_nodes)
            .map(|id| {
                Node::new(
                    id,
                    cfg.buffer_capacity,
                    make_policy(id),
                    cfg.routing.build(),
                )
            })
            .collect();
        let mut queue = EventQueue::new();
        queue.push(SimTime::ZERO, WorldEvent::Tick);
        queue.push(SimTime::ZERO, WorldEvent::Generate);

        // Fault injection: the whole schedule is precomputed here from
        // dedicated FAULTS-stream substreams, one per node per fault
        // kind, so fault timing is independent of everything else in
        // the run. Every draw is gated on its feature being enabled —
        // an empty `FaultPlan` draws nothing and pushes nothing, which
        // is what keeps zero-fault runs bit-identical to builds that
        // predate fault injection.
        let faults = &cfg.faults;
        let mut clock_skew = Vec::new();
        let mut abort_rng = None;
        if !faults.is_empty() {
            if faults.clock_skew_max_secs > 0.0 {
                let mut rng = substream_rng(cfg.seed, streams::FAULTS, 1);
                let max = faults.clock_skew_max_secs;
                clock_skew = (0..cfg.n_nodes)
                    .map(|_| uniform_range(&mut rng, -max, max))
                    .collect();
            }
            if faults.transfer_abort_prob > 0.0 {
                abort_rng = Some(substream_rng(cfg.seed, streams::FAULTS, 2));
            }
            // Crash/reboot and blackout windows: exponential
            // inter-arrivals per node; the next candidate window starts
            // only after the previous one ends, so a node's windows of
            // the same kind never overlap.
            let mut schedule = |rate_per_hour: f64,
                                down_secs: f64,
                                sub_base: u64,
                                start: fn(NodeId) -> WorldEvent,
                                end: fn(NodeId) -> WorldEvent| {
                if rate_per_hour <= 0.0 {
                    return;
                }
                let rate = rate_per_hour / 3600.0;
                for i in 0..cfg.n_nodes {
                    let node = NodeId(i as u32);
                    let mut rng = substream_rng(cfg.seed, streams::FAULTS, sub_base + i as u64);
                    let mut t = 0.0;
                    loop {
                        t += exponential(&mut rng, rate);
                        if t > cfg.duration_secs {
                            break;
                        }
                        queue.push(SimTime::from_secs(t), start(node));
                        t += down_secs;
                        if t > cfg.duration_secs {
                            break;
                        }
                        queue.push(SimTime::from_secs(t), end(node));
                    }
                }
            };
            schedule(
                faults.crash_rate_per_hour,
                faults.reboot_secs,
                0x1000,
                |node| WorldEvent::NodeCrash { node },
                |node| WorldEvent::NodeReboot { node },
            );
            schedule(
                faults.blackout_rate_per_hour,
                faults.blackout_secs,
                0x2000,
                |node| WorldEvent::BlackoutStart { node },
                |node| WorldEvent::BlackoutEnd { node },
            );
        }

        World {
            cfg: cfg.clone(),
            nodes,
            mobility,
            positions: vec![Point2::default(); cfg.n_nodes],
            tracker,
            links: HashMap::new(),
            queue,
            now: SimTime::ZERO,
            traffic_rng: stream_rng(cfg.seed, streams::TRAFFIC),
            catalog: Vec::new(),
            report: Report::new(),
            oracle: cfg.oracle.then(|| OracleState {
                seen: Vec::new(),
                holders: Vec::new(),
            }),
            next_transfer_seq: 0,
            uncounted: HashSet::new(),
            contact_trace: None,
            recorder: Recorder::disabled(),
            metrics: None,
            validator: None,
            validate_metrics: None,
            refused_seen: HashSet::new(),
            scratch_events: Vec::new(),
            scratch_idle: Vec::new(),
            spray_pool: Vec::new(),
            radio_off: vec![0; cfg.n_nodes],
            clock_skew,
            abort_rng,
        }
    }

    /// Installs a telemetry recorder. An enabled recorder receives every
    /// [`SimEvent`] the run produces and gets the world's metrics
    /// (`events_processed`, `delivery_latency_secs`, `transfer_bytes`,
    /// `live_contacts`) registered on it. Call before
    /// [`enable_timeseries`](Self::enable_timeseries) — attaching
    /// replaces the previous recorder, time series included.
    pub fn attach_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
        self.metrics = if self.recorder.is_enabled() {
            let m = self.recorder.metrics_mut();
            Some(WorldMetrics {
                events_processed: m.counter("events_processed"),
                delivery_latency_secs: m.histogram(
                    "delivery_latency_secs",
                    &[60.0, 300.0, 900.0, 1800.0, 3600.0, 7200.0],
                ),
                transfer_bytes: m.histogram(
                    "transfer_bytes",
                    &[65_536.0, 262_144.0, 524_288.0, 1_048_576.0, 4_194_304.0],
                ),
                live_contacts: m.gauge("live_contacts"),
            })
        } else {
            None
        };
        self.refresh_validate_metrics();
    }

    /// Enables invariant checking and the estimator oracle for this
    /// run. Must be called before the first message is generated.
    ///
    /// Every simulator state transition is mirrored into a ground-truth
    /// ledger and every tick ends with a full-state sweep that
    /// cross-checks it (copy-token conservation, holder counts, buffer
    /// accounting, delivery/TTL hygiene, dropped-list gossip). When a
    /// recorder is attached, violations and estimator-error samples are
    /// also emitted as [`SimEvent`]s and metrics. Token conservation is
    /// asserted only for routing protocols that conserve spray tokens
    /// (the Spray-and-Wait family and direct delivery); epidemic and
    /// PRoPHET mint a copy per replication by design.
    pub fn enable_validation(&mut self, cfg: ValidateConfig) {
        assert!(
            self.catalog.is_empty(),
            "enable_validation must be called before any message is generated"
        );
        let conserve = matches!(
            self.cfg.routing,
            RoutingKind::SprayAndWaitBinary
                | RoutingKind::SprayAndWaitSource
                | RoutingKind::SprayAndFocus { .. }
                | RoutingKind::Direct
        );
        self.validator = Some(Box::new(Validator::new(cfg, self.cfg.n_nodes, conserve)));
        self.refresh_validate_metrics();
    }

    /// Whether [`enable_validation`](Self::enable_validation) was
    /// called.
    pub fn validation_enabled(&self) -> bool {
        self.validator.is_some()
    }

    /// Mutable access to the validator — fault injection for harness
    /// self-tests and mid-run report inspection.
    pub fn validator_mut(&mut self) -> Option<&mut Validator> {
        self.validator.as_deref_mut()
    }

    /// Runs a final validation sweep and takes the accumulated report.
    /// For worlds driven via [`step_until`](Self::step_until); the
    /// consuming run methods finalize automatically.
    pub fn take_validation_report(&mut self) -> Option<ValidationReport> {
        self.finalize_validation();
        self.validator.as_mut().map(|v| v.take_report())
    }

    fn refresh_validate_metrics(&mut self) {
        self.validate_metrics = if self.validator.is_some() && self.recorder.is_enabled() {
            let m = self.recorder.metrics_mut();
            Some(ValidateMetrics {
                invariant_violations: m.counter("invariant_violations"),
                estimator_m_rel_err: m
                    .histogram("estimator_m_rel_err", &[0.1, 0.25, 0.5, 1.0, 2.0, 5.0]),
                estimator_n_rel_err: m
                    .histogram("estimator_n_rel_err", &[0.1, 0.25, 0.5, 1.0, 2.0, 5.0]),
                estimator_m_mean_rel_err: m.gauge("estimator_m_mean_rel_err"),
                estimator_m_max_rel_err: m.gauge("estimator_m_max_rel_err"),
                estimator_n_mean_rel_err: m.gauge("estimator_n_mean_rel_err"),
                estimator_n_max_rel_err: m.gauge("estimator_n_max_rel_err"),
            })
        } else {
            None
        };
    }

    /// Read access to the attached recorder (totals, ring, metrics).
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Runs to completion, returning the report plus the recorder with
    /// its accumulated totals, event ring, metrics and any sampled time
    /// series. The recorder's sink is flushed.
    pub fn run_with_recorder(mut self) -> (Report, Recorder) {
        let end = SimTime::from_secs(self.cfg.duration_secs);
        while let Some((t, ev)) = self.queue.pop_until(end) {
            self.now = t;
            self.handle(ev);
        }
        self.finalize_validation();
        self.recorder.flush();
        (self.report, self.recorder)
    }

    /// Runs to completion with validation enabled (enabling it with
    /// defaults if needed), returning the report, the validation
    /// report, and the recorder.
    pub fn run_validated(mut self) -> (Report, ValidationReport, Recorder) {
        if self.validator.is_none() {
            self.enable_validation(ValidateConfig::default());
        }
        let end = SimTime::from_secs(self.cfg.duration_secs);
        while let Some((t, ev)) = self.queue.pop_until(end) {
            self.now = t;
            self.handle(ev);
        }
        self.finalize_validation();
        self.recorder.flush();
        let validation = self
            .validator
            .as_mut()
            .expect("enabled above")
            .take_report();
        (self.report, validation, self.recorder)
    }

    /// Samples occupancy/contact/message time series every
    /// `sample_every` simulated seconds. Call before [`run`](Self::run);
    /// retrieve with [`run_with_timeseries`](Self::run_with_timeseries).
    pub fn enable_timeseries(&mut self, sample_every: f64) {
        self.recorder.enable_timeseries(sample_every);
    }

    /// Runs to completion, returning the report plus the sampled time
    /// series (enabling it if necessary).
    pub fn run_with_timeseries(mut self) -> (Report, crate::timeseries::TimeSeries) {
        if !self.recorder.has_timeseries() {
            self.enable_timeseries(self.cfg.tick_secs.max(1.0) * 10.0);
        }
        let end = SimTime::from_secs(self.cfg.duration_secs);
        while let Some((t, ev)) = self.queue.pop_until(end) {
            self.now = t;
            self.handle(ev);
        }
        self.finalize_validation();
        self.recorder.flush();
        let ts = self.recorder.take_timeseries().expect("enabled above");
        (self.report, ts)
    }

    /// Records closed contact intervals for intermeeting analysis
    /// (Fig. 3). Call before [`run`](Self::run).
    pub fn enable_contact_recording(&mut self) {
        self.contact_trace = Some(ContactTrace::new());
    }

    /// Advances the simulation to `until` (capped at the scenario
    /// duration), returning the number of events processed. Interleave
    /// with the inspection accessors to watch a run evolve;
    /// [`run`](Self::run) remains the one-shot alternative.
    pub fn step_until(&mut self, until: SimTime) -> u64 {
        let end = until.min(SimTime::from_secs(self.cfg.duration_secs));
        let mut processed = 0;
        while let Some((t, ev)) = self.queue.pop_until(end) {
            self.now = t;
            self.handle(ev);
            processed += 1;
        }
        self.now = self.now.max(end);
        processed
    }

    /// Current simulation clock.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Messages currently buffered at `node`.
    pub fn buffered_count(&self, node: NodeId) -> usize {
        self.nodes[node.index()].buffered_count()
    }

    /// Contacts currently up.
    pub fn live_contacts(&self) -> usize {
        self.links.len()
    }

    /// Runs the scenario to completion and returns the report.
    pub fn run(mut self) -> Report {
        let end = SimTime::from_secs(self.cfg.duration_secs);
        while let Some((t, ev)) = self.queue.pop_until(end) {
            self.now = t;
            self.handle(ev);
        }
        self.finalize_validation();
        // Close open contacts so the contact trace is complete.
        if self.contact_trace.is_some() {
            let mut events = Vec::new();
            self.tracker.close_all(end, &mut events);
            if let Some(trace) = self.contact_trace.as_mut() {
                for ev in events {
                    trace.record(ev);
                }
            }
        }
        self.report
    }

    /// Runs to completion but also returns the recorded contact trace
    /// (empty unless [`enable_contact_recording`](Self::enable_contact_recording)
    /// was called).
    pub fn run_with_trace(mut self) -> (Report, ContactTrace) {
        if self.contact_trace.is_none() {
            self.enable_contact_recording();
        }
        let end = SimTime::from_secs(self.cfg.duration_secs);
        while let Some((t, ev)) = self.queue.pop_until(end) {
            self.now = t;
            self.handle(ev);
        }
        self.finalize_validation();
        let mut events = Vec::new();
        self.tracker.close_all(end, &mut events);
        let mut trace = self.contact_trace.take().expect("enabled above");
        for ev in events {
            trace.record(ev);
        }
        (self.report, trace)
    }

    fn handle(&mut self, ev: WorldEvent) {
        if let Some(m) = self.metrics.as_ref() {
            self.recorder.metrics_mut().inc(m.events_processed, 1);
        }
        match ev {
            WorldEvent::Tick => self.on_tick(),
            WorldEvent::Generate => self.on_generate(),
            WorldEvent::TransferComplete { pair, seq } => self.on_transfer_complete(pair, seq),
            WorldEvent::NodeCrash { node } => self.on_node_crash(node),
            WorldEvent::NodeReboot { node } => self.on_node_reboot(node),
            WorldEvent::BlackoutStart { node } => self.on_blackout_start(node),
            WorldEvent::BlackoutEnd { node } => self.on_blackout_end(node),
        }
    }

    // ------------------------------------------------------------------
    // Tick: movement, contacts, expiry.
    // ------------------------------------------------------------------

    fn on_tick(&mut self) {
        self.purge_expired();

        for (i, m) in self.mobility.iter_mut().enumerate() {
            self.positions[i] = m.position_at(self.now);
        }
        // Radio-down nodes are parked at distinct far-away sentinels so
        // contact detection cannot see them (or each other: sentinels
        // are 1e9 m apart, far beyond any radio range). Mobility is
        // still sampled above, so their trajectories stay on schedule
        // and they rejoin at their true position.
        for (i, &off) in self.radio_off.iter().enumerate() {
            if off > 0 {
                self.positions[i] = Point2::new(-1.0e12 - i as f64 * 1.0e9, -1.0e12);
            }
        }
        let mut events = std::mem::take(&mut self.scratch_events);
        events.clear();
        self.tracker.update(self.now, &self.positions, &mut events);
        for ev in &events {
            if let Some(trace) = self.contact_trace.as_mut() {
                trace.record(*ev);
            }
            match *ev {
                ContactEvent::Down { pair, .. } => self.on_contact_down(pair),
                ContactEvent::Up { pair, .. } => self.on_contact_up(pair),
            }
        }
        self.scratch_events = events;

        if let Some(m) = self.metrics.as_ref() {
            let live = self.links.len() as f64;
            self.recorder.metrics_mut().set_gauge(m.live_contacts, live);
        }

        // Sample the time series if due.
        if self.recorder.timeseries_due(self.now.as_secs()) {
            let point = self.sample_timepoint();
            self.recorder.record_timepoint(point);
        }

        // Catch-all: restart any idle live link (new messages may have
        // arrived since the link went idle).
        self.rearm_idle_links(None);

        self.run_validation_sweep();

        let next = self.now + SimDuration::from_secs(self.cfg.tick_secs);
        if next.as_secs() <= self.cfg.duration_secs {
            self.queue.push(next, WorldEvent::Tick);
        }
    }

    fn on_contact_up(&mut self, pair: NodePair) {
        self.links.insert(pair, LinkState::default());
        let now = self.now;
        let t = now.as_secs();
        let (lo, hi) = (pair.lo().0, pair.hi().0);
        self.recorder
            .record(|| SimEvent::ContactUp { t, a: lo, b: hi });
        let (a, b) = two_nodes(&mut self.nodes, pair.lo(), pair.hi());
        a.policy.on_contact_up(now, b.id);
        b.policy.on_contact_up(now, a.id);
        a.routing.on_contact_up(now, b.id);
        b.routing.on_contact_up(now, a.id);
        // Control-plane gossip, both ways (dropped lists, encounter
        // timers). Export both first so neither side sees the other's
        // merged state.
        let ga = a.policy.export_gossip(now);
        let gb = b.policy.export_gossip(now);
        if let Some(v) = self.validator.as_mut() {
            if let Some(bytes) = ga.as_deref() {
                v.on_gossip_export(now, a.id, bytes);
            }
            if let Some(bytes) = gb.as_deref() {
                v.on_gossip_export(now, b.id, bytes);
            }
        }
        if let Some(bytes) = gb {
            let adopted = a.policy.import_gossip(now, &bytes);
            if adopted > 0 {
                self.recorder.record(|| SimEvent::GossipMerged {
                    t,
                    node: lo,
                    from: hi,
                    records: adopted as u64,
                });
            }
        }
        if let Some(bytes) = ga {
            let adopted = b.policy.import_gossip(now, &bytes);
            if adopted > 0 {
                self.recorder.record(|| SimEvent::GossipMerged {
                    t,
                    node: hi,
                    from: lo,
                    records: adopted as u64,
                });
            }
        }
        let ra = a.routing.export_gossip(now);
        let rb = b.routing.export_gossip(now);
        if let Some(bytes) = rb {
            a.routing.import_gossip(now, b.id, &bytes);
        }
        if let Some(bytes) = ra {
            b.routing.import_gossip(now, a.id, &bytes);
        }
        if self.cfg.immunity == ImmunityMode::AntipacketGossip {
            // Antipacket exchange: union the acknowledged-id sets, then
            // purge newly-learned dead copies on both sides.
            let from_b: Vec<MessageId> = b.acked.difference(&a.acked).copied().collect();
            let from_a: Vec<MessageId> = a.acked.difference(&b.acked).copied().collect();
            a.acked.extend(from_b);
            b.acked.extend(from_a);
            self.purge_acked(pair.lo());
            self.purge_acked(pair.hi());
        }
        self.try_start_transfer(pair);
    }

    fn on_contact_down(&mut self, pair: NodePair) {
        if let Some(state) = self.links.remove(&pair) {
            if state.in_flight.is_some() {
                self.report.on_aborted_transfer();
            }
        }
        let now = self.now;
        let t = now.as_secs();
        let (lo, hi) = (pair.lo().0, pair.hi().0);
        self.recorder
            .record(|| SimEvent::ContactDown { t, a: lo, b: hi });
        let (a, b) = two_nodes(&mut self.nodes, pair.lo(), pair.hi());
        a.policy.on_contact_down(now, b.id);
        b.policy.on_contact_down(now, a.id);
        a.routing.on_contact_down(now, b.id);
        b.routing.on_contact_down(now, a.id);
    }

    // ------------------------------------------------------------------
    // Fault injection (crashes, blackouts).
    // ------------------------------------------------------------------

    /// Forces every live contact of `node` down through the normal
    /// [`Self::on_contact_down`] path (aborting in-flight transfers the
    /// same way mobility would).
    fn force_contacts_down(&mut self, node: NodeId) {
        let mut events = std::mem::take(&mut self.scratch_events);
        events.clear();
        self.tracker.drop_node(node, self.now, &mut events);
        for ev in &events {
            if let Some(trace) = self.contact_trace.as_mut() {
                trace.record(*ev);
            }
            if let ContactEvent::Down { pair, .. } = *ev {
                self.on_contact_down(pair);
            }
        }
        self.scratch_events = events;
    }

    /// Injected crash: the radio dies, every buffered copy (and its
    /// spray tokens) is destroyed, and volatile protocol state — the
    /// buffer policy's estimators/dropped lists and the routing
    /// protocol's timers — reboots cold. Durable application state
    /// (`delivered`, `acked`) survives, as would anything persisted to
    /// stable storage on a real node. Report counters are untouched:
    /// fault counts flow only through telemetry and the validator's
    /// fault ledger.
    fn on_node_crash(&mut self, node: NodeId) {
        self.radio_off[node.index()] += 1;
        self.force_contacts_down(node);

        let now = self.now;
        let doomed: Vec<MessageId> = self.nodes[node.index()].buffer.keys().copied().collect();
        let wiped = doomed.len() as u64;
        for id in doomed {
            let size = self.catalog[id.index()].size;
            let removed = self.nodes[node.index()].remove_copy(id, size);
            if let Some(o) = self.oracle.as_mut() {
                o.holders[id.index()] = o.holders[id.index()].saturating_sub(1);
            }
            if let Some(v) = self.validator.as_mut() {
                v.on_crash_wipe(id, removed.copies);
            }
            recycle_spray(&mut self.spray_pool, removed);
        }
        let n = self.nodes[node.index()].buffered_count();
        debug_assert_eq!(n, 0, "crash wipe left copies behind");
        self.nodes[node.index()].policy.on_node_reset(now);
        self.nodes[node.index()].routing = self.cfg.routing.build();
        if let Some(v) = self.validator.as_mut() {
            v.on_node_crashed(node);
        }
        let (t, id) = (now.as_secs(), node.0);
        self.recorder
            .record(|| SimEvent::NodeCrashed { t, node: id, wiped });
    }

    /// Injected reboot: the radio comes back; contacts re-form on the
    /// next tick when the node's true position is back in range.
    fn on_node_reboot(&mut self, node: NodeId) {
        self.radio_off[node.index()] = self.radio_off[node.index()].saturating_sub(1);
        let (t, id) = (self.now.as_secs(), node.0);
        self.recorder
            .record(|| SimEvent::NodeRebooted { t, node: id });
    }

    /// Injected blackout: the radio goes dark but all state survives —
    /// the node simply vanishes from contact detection for the window.
    fn on_blackout_start(&mut self, node: NodeId) {
        self.radio_off[node.index()] += 1;
        self.force_contacts_down(node);
        if let Some(v) = self.validator.as_mut() {
            v.on_blackout(node);
        }
        let (t, id) = (self.now.as_secs(), node.0);
        self.recorder
            .record(|| SimEvent::BlackoutStarted { t, node: id });
    }

    /// End of a blackout window.
    fn on_blackout_end(&mut self, node: NodeId) {
        self.radio_off[node.index()] = self.radio_off[node.index()].saturating_sub(1);
        let (t, id) = (self.now.as_secs(), node.0);
        self.recorder
            .record(|| SimEvent::BlackoutEnded { t, node: id });
    }

    /// Whether `node`'s radio is currently down (crashed or blacked
    /// out). Inspection accessor for tests and step-wise drivers.
    pub fn node_is_down(&self, node: NodeId) -> bool {
        self.radio_off[node.index()] > 0
    }

    fn purge_expired(&mut self) {
        let now = self.now;
        for node in &mut self.nodes {
            let expired: Vec<MessageId> = node
                .buffer
                .keys()
                .copied()
                .filter(|id| self.catalog[id.index()].expired(now))
                .collect();
            for id in expired {
                let size = self.catalog[id.index()].size;
                let removed = node.remove_copy(id, size);
                self.report.on_expired();
                let holder = node.id.0;
                self.recorder.record(|| SimEvent::TtlExpired {
                    t: now.as_secs(),
                    msg: id.0,
                    node: holder,
                });
                if let Some(o) = self.oracle.as_mut() {
                    o.holders[id.index()] = o.holders[id.index()].saturating_sub(1);
                }
                if let Some(v) = self.validator.as_mut() {
                    v.on_expired(id, removed.copies);
                }
                recycle_spray(&mut self.spray_pool, removed);
            }
        }
    }

    // ------------------------------------------------------------------
    // Traffic generation.
    // ------------------------------------------------------------------

    fn on_generate(&mut self) {
        let n = self.cfg.n_nodes;
        let source = NodeId(self.traffic_rng.gen_range(0..n as u32));
        let destination = loop {
            let d = NodeId(self.traffic_rng.gen_range(0..n as u32));
            if d != source {
                break d;
            }
        };
        // Fixed size (the paper's 0.5 MB) or drawn uniformly from the
        // configured range (extension for size-aware policies).
        let size = match self.cfg.message_size_max {
            None => self.cfg.message_size,
            Some(max) => {
                let lo = self.cfg.message_size.as_u64() as f64;
                let hi = max.as_u64() as f64;
                dtn_core::units::Bytes::new(
                    uniform_range(&mut self.traffic_rng, lo, hi).round() as u64
                )
            }
        };
        let msg = Message {
            id: MessageId(self.catalog.len() as u64),
            source,
            destination,
            size,
            created: self.now,
            ttl: self.cfg.ttl,
            initial_copies: self.cfg.initial_copies,
        };
        self.catalog.push(msg);
        if self.now.as_secs() >= self.cfg.warmup_secs {
            self.report.on_created();
            let t = self.now.as_secs();
            let copies = self.cfg.initial_copies;
            self.recorder.record(|| SimEvent::MessageGenerated {
                t,
                msg: msg.id.0,
                src: source.0,
                dst: destination.0,
                size: size.as_u64(),
                copies,
            });
        } else {
            self.uncounted.insert(msg.id);
        }
        if let Some(o) = self.oracle.as_mut() {
            o.seen.push(HashSet::new());
            o.holders.push(0);
        }
        if let Some(v) = self.validator.as_mut() {
            v.on_generated(
                msg.id,
                source,
                msg.initial_copies,
                msg.expires_at().as_secs(),
            );
        }

        // Source-side admission. ONE's `makeRoomForNewMessage` always
        // makes room for a *newly generated* message by evicting per the
        // drop policy — the newcomer itself is exempt from rejection.
        // (Applying Algorithm 1's newcomer-vs-lowest rule here would
        // penalise only SDSRP: every baseline ranks a fresh message
        // highest, while SDSRP's Eq. 10 can rank an unsprayed
        // long-TTL message below nearly-expired residents and then
        // refuse its *own* message at birth.)
        let copy = BufferedCopy::at_source(&msg);
        self.admit_copy_forced(source, msg.id, copy);

        // Schedule the next generation.
        let (lo, hi) = self.cfg.gen_interval;
        let gap = match self.cfg.traffic {
            crate::config::TrafficModel::Uniform => uniform_range(&mut self.traffic_rng, lo, hi),
            crate::config::TrafficModel::Poisson => {
                // Same mean rate as the uniform setting.
                let rate = 2.0 / (lo + hi);
                dtn_core::rng::exponential(&mut self.traffic_rng, rate)
            }
        };
        let next = self.now + SimDuration::from_secs(gap);
        if next.as_secs() <= self.cfg.duration_secs {
            self.queue.push(next, WorldEvent::Generate);
        }

        self.rearm_idle_links(Some(source));
    }

    /// Forced admission for newly generated messages: evicts the
    /// lowest-retention-priority residents until the newcomer fits
    /// (always succeeds because `validate` guarantees a single message
    /// fits in an empty buffer).
    fn admit_copy_forced(&mut self, node_id: NodeId, msg_id: MessageId, copy: BufferedCopy) {
        let now = self.now;
        let msg = self.catalog[msg_id.index()];
        let node = &mut self.nodes[node_id.index()];
        let mut free = node.free();
        let mut victims: Vec<(MessageId, dtn_core::units::Bytes)> = Vec::new();
        if free < msg.size {
            // Lazy lowest-keep-priority selection: heapify every
            // resident in O(B), pop only the victims actually needed.
            // `EvictionRank` orders by `(priority, id)` — the total
            // order the former full sort used — so the victim sequence
            // is unchanged.
            let mut ranked: std::collections::BinaryHeap<std::cmp::Reverse<EvictionRank>> = {
                let policy = node.policy.as_mut();
                let catalog = &self.catalog;
                let oracle = self.oracle.as_ref();
                node.buffer
                    .values()
                    .map(|c| {
                        let m = &catalog[c.msg.index()];
                        let oi = oracle.map(|o| o.of(c.msg));
                        let view = make_view(m, c, now, oi);
                        std::cmp::Reverse(EvictionRank {
                            priority: policy.keep_priority(now, &view),
                            id: c.msg,
                            size: m.size,
                        })
                    })
                    .collect()
            };
            while free < msg.size {
                let Some(std::cmp::Reverse(v)) = ranked.pop() else {
                    break;
                };
                victims.push((v.id, v.size));
                free += v.size;
            }
        }
        for (victim, size) in victims {
            let node = &mut self.nodes[node_id.index()];
            let removed = node.remove_copy(victim, size);
            node.policy.on_drop(now, victim);
            let policy = node.policy.name();
            self.report.on_buffer_drop();
            self.recorder.record(|| SimEvent::Dropped {
                t: now.as_secs(),
                msg: victim.0,
                node: node_id.0,
                policy,
                reason: DropReason::Evicted,
            });
            if let Some(o) = self.oracle.as_mut() {
                o.holders[victim.index()] = o.holders[victim.index()].saturating_sub(1);
            }
            if let Some(v) = self.validator.as_mut() {
                v.on_evicted(victim, node_id, removed.copies);
            }
            recycle_spray(&mut self.spray_pool, removed);
        }
        self.nodes[node_id.index()].insert_copy(copy, msg.size);
        if let Some(o) = self.oracle.as_mut() {
            o.holders[msg_id.index()] += 1;
        }
        if let Some(v) = self.validator.as_mut() {
            v.on_inserted(msg_id, node_id);
        }
    }

    /// Runs the admission algorithm for `copy` arriving at `node_id`;
    /// applies evictions and insertion. Returns true if admitted.
    fn admit_copy(&mut self, node_id: NodeId, msg_id: MessageId, copy: BufferedCopy) -> bool {
        let now = self.now;
        let msg = self.catalog[msg_id.index()];
        let oracle_info = self.oracle.as_ref().map(|o| o.of(msg_id));
        let incoming_tokens = copy.copies;

        let node = &mut self.nodes[node_id.index()];
        let free = node.free();
        let capacity = node.capacity;

        // Build views of incoming + residents.
        let incoming_view = make_view(&msg, &copy, now, oracle_info);
        let resident_views: Vec<_> = node
            .buffer
            .values()
            .map(|c| {
                let m = &self.catalog[c.msg.index()];
                let oi = self.oracle.as_ref().map(|o| o.of(c.msg));
                make_view(m, c, now, oi)
            })
            .collect();
        let plan = plan_admission(
            node.policy.as_mut(),
            now,
            &incoming_view,
            &resident_views,
            free,
            capacity,
        );
        drop(resident_views);

        match plan {
            AdmissionPlan::RejectIncoming => {
                // Algorithm 1 line 10-11: the newcomer is the drop victim.
                self.report.on_incoming_reject();
                node.policy.on_drop(now, msg_id);
                let policy = node.policy.name();
                self.recorder.record(|| SimEvent::Dropped {
                    t: now.as_secs(),
                    msg: msg_id.0,
                    node: node_id.0,
                    policy,
                    reason: DropReason::RejectedIncoming,
                });
                if let Some(v) = self.validator.as_mut() {
                    v.on_rejected_incoming(msg_id, node_id, incoming_tokens);
                }
                recycle_spray(&mut self.spray_pool, copy);
                false
            }
            AdmissionPlan::Admit { evict } => {
                for victim in evict {
                    let size = self.catalog[victim.index()].size;
                    let removed = node.remove_copy(victim, size);
                    node.policy.on_drop(now, victim);
                    let policy = node.policy.name();
                    self.report.on_buffer_drop();
                    self.recorder.record(|| SimEvent::Dropped {
                        t: now.as_secs(),
                        msg: victim.0,
                        node: node_id.0,
                        policy,
                        reason: DropReason::Evicted,
                    });
                    if let Some(o) = self.oracle.as_mut() {
                        o.holders[victim.index()] = o.holders[victim.index()].saturating_sub(1);
                    }
                    if let Some(v) = self.validator.as_mut() {
                        v.on_evicted(victim, node_id, removed.copies);
                    }
                    recycle_spray(&mut self.spray_pool, removed);
                }
                self.nodes[node_id.index()].insert_copy(copy, msg.size);
                if let Some(o) = self.oracle.as_mut() {
                    o.holders[msg_id.index()] += 1;
                    if node_id != msg.source {
                        o.seen[msg_id.index()].insert(node_id);
                    }
                }
                if let Some(v) = self.validator.as_mut() {
                    v.on_inserted(msg_id, node_id);
                }
                true
            }
        }
    }

    // ------------------------------------------------------------------
    // Transfers.
    // ------------------------------------------------------------------

    /// Picks and starts the best transfer on an idle live link.
    fn try_start_transfer(&mut self, pair: NodePair) {
        let Some(state) = self.links.get(&pair) else {
            return;
        };
        if state.in_flight.is_some() {
            return;
        }
        let Some(best) = self.best_candidate(pair) else {
            return;
        };
        let seq = self.next_transfer_seq;
        self.next_transfer_seq += 1;
        let size = self.catalog[best.msg.index()].size;
        let duration = self.cfg.link.transfer_time(size);
        let copies_at_start = self.nodes[best.from.index()]
            .buffer
            .get(&best.msg)
            .expect("candidate came from this buffer")
            .copies;
        self.links
            .get_mut(&pair)
            .expect("link checked above")
            .in_flight = Some(InFlight {
            seq,
            from: best.from,
            to: best.to,
            msg: best.msg,
            kind: best.kind,
            copies_at_start,
        });
        self.queue.push(
            self.now + duration,
            WorldEvent::TransferComplete { pair, seq },
        );
    }

    /// Enumerates eligible transfers in both directions of `pair` and
    /// returns the winner: deliveries first, then the sender's scheduling
    /// priority, ties broken deterministically.
    fn best_candidate(&mut self, pair: NodePair) -> Option<Candidate> {
        let now = self.now;
        let mut best: Option<Candidate> = None;
        for (s_id, r_id) in [(pair.lo(), pair.hi()), (pair.hi(), pair.lo())] {
            let (sender, receiver) = two_nodes(&mut self.nodes, s_id, r_id);
            let ctx = RoutingCtx {
                me: s_id,
                peer: r_id,
                now,
            };
            for copy in sender.buffer.values() {
                let msg = &self.catalog[copy.msg.index()];
                if msg.expired(now) {
                    continue;
                }
                if sender.acked.contains(&msg.id) {
                    continue; // dead message awaiting purge
                }
                let peer_has = receiver.has(msg.id)
                    || receiver.delivered.contains(&msg.id)
                    || receiver.acked.contains(&msg.id);
                let oi = self.oracle.as_ref().map(|o| o.of(msg.id));
                let view = make_view(msg, copy, now, oi);
                let Some(kind) = sender.routing.eligibility(&ctx, &view, peer_has) else {
                    continue;
                };
                let is_delivery = matches!(kind, TransferKind::Delivery);
                // Receivers refuse messages on their dropped list (paper
                // Section III-C); deliveries are never refused. Each
                // `(receiver, message)` refusal is reported once even
                // though the candidate recurs every scheduling pass.
                if !is_delivery && !receiver.policy.accepts(now, msg.id) {
                    if self.refused_seen.insert((r_id, msg.id)) {
                        self.report.on_refused_receipt();
                        let mid = msg.id.0;
                        self.recorder.record(|| SimEvent::Refused {
                            t: now.as_secs(),
                            msg: mid,
                            node: r_id.0,
                            from: s_id.0,
                        });
                    }
                    continue;
                }
                let priority = sender.policy.send_priority(now, &view);
                let cand = Candidate {
                    from: s_id,
                    to: r_id,
                    msg: msg.id,
                    kind,
                    is_delivery,
                    priority,
                };
                best = Some(match best.take() {
                    None => cand,
                    Some(cur) => pick_better(cur, cand),
                });
            }
        }
        best
    }

    fn on_transfer_complete(&mut self, pair: NodePair, seq: u64) {
        // Stale completion (link re-established or different transfer)?
        let Some(state) = self.links.get_mut(&pair) else {
            return;
        };
        match state.in_flight {
            Some(f) if f.seq == seq => {
                state.in_flight = None;
                // Mid-transfer abort injection: the RNG exists only when
                // `transfer_abort_prob > 0`, and is consulted once per
                // genuinely completing transfer. Nothing has been
                // applied yet, so an abort leaves both buffers exactly
                // as a mobility-caused abort would.
                let injected_abort = match self.abort_rng.as_mut() {
                    Some(rng) => rng.gen_bool(self.cfg.faults.transfer_abort_prob),
                    None => false,
                };
                if injected_abort {
                    self.report.on_aborted_transfer();
                    if let Some(v) = self.validator.as_mut() {
                        v.on_fault_abort();
                    }
                    let t = self.now.as_secs();
                    let (msg, from, to) = (f.msg.0, f.from.0, f.to.0);
                    self.recorder
                        .record(|| SimEvent::TransferAborted { t, msg, from, to });
                } else {
                    self.apply_transfer(f);
                }
            }
            _ => return,
        }
        // Link is free again: keep the contact busy, and buffers changed
        // so other idle links of both endpoints may have work now.
        self.try_start_transfer(pair);
        self.rearm_idle_links(Some(pair.lo()));
        self.rearm_idle_links(Some(pair.hi()));
    }

    fn apply_transfer(&mut self, f: InFlight) {
        let now = self.now;
        let msg = self.catalog[f.msg.index()];
        // The sender may have lost the copy mid-transfer (eviction or
        // TTL): the transfer never really happened.
        if !self.nodes[f.from.index()].has(f.msg) || msg.expired(now) {
            self.report.on_aborted_transfer();
            return;
        }
        // The receiver may have obtained the message from elsewhere (or
        // been delivered to) meanwhile: drop the duplicate silently.
        {
            let receiver = &self.nodes[f.to.index()];
            if receiver.has(f.msg) || receiver.delivered.contains(&f.msg) {
                return;
            }
        }

        match f.kind {
            TransferKind::Delivery => {
                if !self.uncounted.contains(&f.msg) {
                    self.report.on_transmission();
                    self.observe_transfer_bytes(msg.size);
                }
                let hops;
                {
                    let sender = &mut self.nodes[f.from.index()];
                    let copy = sender.buffer.get_mut(&f.msg).expect("checked above");
                    copy.forward_count += 1;
                    hops = copy.hops + 1;
                }
                let receiver = &mut self.nodes[f.to.index()];
                receiver.delivered.insert(f.msg);
                if let Some(v) = self.validator.as_mut() {
                    v.on_delivered(f.msg, f.to);
                }
                if !self.uncounted.contains(&f.msg) {
                    let first = !self.report.is_delivered(f.msg);
                    self.report.on_delivered(f.msg, hops, msg.created, now);
                    let latency = now.as_secs() - msg.created.as_secs();
                    if let Some(m) = self.metrics.as_ref() {
                        self.recorder
                            .metrics_mut()
                            .observe(m.delivery_latency_secs, latency);
                    }
                    self.recorder.record(|| SimEvent::Delivered {
                        t: now.as_secs(),
                        msg: f.msg.0,
                        from: f.from.0,
                        hops,
                        latency,
                        first,
                    });
                }
                if let Some(o) = self.oracle.as_mut() {
                    o.seen[f.msg.index()].insert(f.to);
                }
                match self.cfg.immunity {
                    ImmunityMode::None => {}
                    ImmunityMode::OracleFlood => self.purge_everywhere(f.msg),
                    ImmunityMode::AntipacketGossip => {
                        // The destination mints the antipacket; it
                        // spreads on future contacts.
                        self.nodes[f.to.index()].acked.insert(f.msg);
                        // The delivering node learns immediately (it
                        // just talked to the destination).
                        self.nodes[f.from.index()].acked.insert(f.msg);
                        self.purge_acked(f.from);
                    }
                }
            }
            TransferKind::Replicate {
                sender_keeps,
                receiver_gets,
            } => {
                // The split was derived from the sender's token count at
                // schedule time. If another link completed a split of the
                // same message mid-flight, applying this one would
                // counterfeit copy tokens — abort like any other
                // mid-flight invalidation.
                let copies_now = self.nodes[f.from.index()]
                    .buffer
                    .get(&f.msg)
                    .expect("checked above")
                    .copies;
                if copies_now != f.copies_at_start {
                    self.report.on_aborted_transfer();
                    return;
                }
                if !self.uncounted.contains(&f.msg) {
                    self.report.on_transmission();
                    self.observe_transfer_bytes(msg.size);
                    let copies = receiver_gets.max(1);
                    self.recorder.record(|| SimEvent::Replicated {
                        t: now.as_secs(),
                        msg: f.msg.0,
                        from: f.from.0,
                        to: f.to.0,
                        copies,
                    });
                }
                // Reuse a pooled spray-history allocation for the
                // receiver's copy instead of cloning a fresh one on
                // every replication (the former per-contact hot-path
                // allocation).
                let mut spray = self.spray_pool.pop().unwrap_or_default();
                let stamp = self.skewed_now(f.from);
                let (incoming, before) = {
                    let sender = &mut self.nodes[f.from.index()];
                    let copy = sender.buffer.get_mut(&f.msg).expect("checked above");
                    let before = copy.copies;
                    let splits_tokens = sender_keeps < copy.copies;
                    copy.copies = sender_keeps.max(1);
                    copy.forward_count += 1;
                    if splits_tokens {
                        // A genuine binary-spray event: both halves record
                        // the timestamp (paper Fig. 6) — as read from the
                        // sender's (possibly skewed) local clock.
                        copy.spray_times.push(stamp);
                    }
                    spray.clear();
                    spray.extend_from_slice(&copy.spray_times);
                    let incoming = BufferedCopy {
                        msg: f.msg,
                        received: now,
                        copies: receiver_gets.max(1),
                        hops: copy.hops + 1,
                        forward_count: 0,
                        spray_times: spray,
                    };
                    (incoming, before)
                };
                if let Some(v) = self.validator.as_mut() {
                    v.on_replicate_split(
                        now,
                        f.msg,
                        f.from,
                        before,
                        sender_keeps.max(1),
                        receiver_gets.max(1),
                    );
                }
                self.admit_copy(f.to, f.msg, incoming);
            }
            TransferKind::Handoff => {
                if !self.uncounted.contains(&f.msg) {
                    self.report.on_transmission();
                    self.observe_transfer_bytes(msg.size);
                }
                let incoming = {
                    let sender = &mut self.nodes[f.from.index()];
                    let mut copy = sender.remove_copy(f.msg, msg.size);
                    if let Some(o) = self.oracle.as_mut() {
                        o.holders[f.msg.index()] = o.holders[f.msg.index()].saturating_sub(1);
                    }
                    copy.received = now;
                    copy.hops += 1;
                    copy
                };
                if let Some(v) = self.validator.as_mut() {
                    v.on_handoff_out(f.msg);
                }
                if !self.uncounted.contains(&f.msg) {
                    let copies = incoming.copies;
                    self.recorder.record(|| SimEvent::Replicated {
                        t: now.as_secs(),
                        msg: f.msg.0,
                        from: f.from.0,
                        to: f.to.0,
                        copies,
                    });
                }
                self.admit_copy(f.to, f.msg, incoming);
            }
        }
    }

    /// Computes one time-series sample from the current state.
    fn sample_timepoint(&self) -> crate::timeseries::TimePoint {
        let mut occ_sum = 0.0;
        let mut occ_max = 0.0f64;
        let mut total_copies = 0usize;
        let mut live: std::collections::HashSet<MessageId> = std::collections::HashSet::new();
        for node in &self.nodes {
            let frac = node.used.as_u64() as f64 / node.capacity.as_u64().max(1) as f64;
            occ_sum += frac;
            occ_max = occ_max.max(frac);
            total_copies += node.buffer.len();
            live.extend(node.buffer.keys().copied());
        }
        crate::timeseries::TimePoint {
            t: self.now.as_secs(),
            mean_occupancy: occ_sum / self.nodes.len() as f64,
            max_occupancy: occ_max,
            live_contacts: self.links.len(),
            live_messages: live.len(),
            total_copies,
        }
    }

    /// Removes every buffered copy of `msg` network-wide (idealised
    /// VACCINE immunity).
    fn purge_everywhere(&mut self, msg: MessageId) {
        let size = self.catalog[msg.index()].size;
        let now = self.now;
        for node in &mut self.nodes {
            if node.has(msg) {
                let removed = node.remove_copy(msg, size);
                self.report.on_immunity_purge();
                let holder = node.id.0;
                let policy = node.policy.name();
                self.recorder.record(|| SimEvent::Dropped {
                    t: now.as_secs(),
                    msg: msg.0,
                    node: holder,
                    policy,
                    reason: DropReason::ImmunityPurge,
                });
                if let Some(o) = self.oracle.as_mut() {
                    o.holders[msg.index()] = o.holders[msg.index()].saturating_sub(1);
                }
                if let Some(v) = self.validator.as_mut() {
                    v.on_immunity_purge(msg, removed.copies);
                }
                recycle_spray(&mut self.spray_pool, removed);
            }
            node.acked.insert(msg);
        }
    }

    /// Purges copies of acknowledged messages from one node's buffer.
    fn purge_acked(&mut self, node_id: NodeId) {
        let now = self.now;
        let node = &mut self.nodes[node_id.index()];
        let doomed: Vec<MessageId> = node
            .buffer
            .keys()
            .copied()
            .filter(|id| node.acked.contains(id))
            .collect();
        for id in doomed {
            let size = self.catalog[id.index()].size;
            let removed = node.remove_copy(id, size);
            self.report.on_immunity_purge();
            let policy = node.policy.name();
            self.recorder.record(|| SimEvent::Dropped {
                t: now.as_secs(),
                msg: id.0,
                node: node_id.0,
                policy,
                reason: DropReason::ImmunityPurge,
            });
            if let Some(o) = self.oracle.as_mut() {
                o.holders[id.index()] = o.holders[id.index()].saturating_sub(1);
            }
            if let Some(v) = self.validator.as_mut() {
                v.on_immunity_purge(id, removed.copies);
            }
            recycle_spray(&mut self.spray_pool, removed);
        }
    }

    /// One full-state validation sweep: walks every buffer and lets the
    /// validator cross-check its hook-path ledger against reality.
    /// `Node.buffer` is a `BTreeMap`, so the walk (and the float
    /// accumulation inside the estimator statistics) is deterministic.
    fn run_validation_sweep(&mut self) {
        let Some(v) = self.validator.as_mut() else {
            return;
        };
        let now = self.now;
        v.begin_sweep(now, self.cfg.tick_secs);
        for node in &self.nodes {
            v.sweep_node(now, node.id, node.used.as_u64(), node.capacity.as_u64());
            for copy in node.buffer.values() {
                let msg = &self.catalog[copy.msg.index()];
                let delivered_here = node.delivered.contains(&copy.msg);
                v.sweep_copy(
                    now,
                    node.id,
                    copy.msg,
                    copy.copies,
                    msg.size.as_u64(),
                    &copy.spray_times,
                    delivered_here,
                );
            }
        }
        let outcome = v.finish_sweep(now);
        self.emit_sweep_outcome(&outcome);
    }

    fn emit_sweep_outcome(&mut self, outcome: &SweepOutcome) {
        for n in &outcome.new_violations {
            let (t, check, msg, node) = (n.t, n.check, n.msg, n.node);
            self.recorder.record(|| SimEvent::InvariantViolation {
                t,
                check,
                msg,
                node,
            });
            if let Some(m) = self.validate_metrics.as_ref() {
                self.recorder.metrics_mut().inc(m.invariant_violations, 1);
            }
        }
        if let Some(s) = outcome.sample {
            if s.samples > 0 {
                let t = self.now.as_secs();
                self.recorder.record(|| SimEvent::EstimatorSample {
                    t,
                    samples: s.samples,
                    mean_err_m: s.mean_err_m,
                    max_err_m: s.max_err_m,
                    mean_err_n: s.mean_err_n,
                    max_err_n: s.max_err_n,
                });
                if let Some(m) = self.validate_metrics.as_ref() {
                    let reg = self.recorder.metrics_mut();
                    reg.observe(m.estimator_m_rel_err, s.mean_err_m);
                    reg.observe(m.estimator_n_rel_err, s.mean_err_n);
                }
            }
        }
    }

    /// Final validation sweep + run-level estimator gauges. Called from
    /// every consuming run path; harmless without a validator.
    fn finalize_validation(&mut self) {
        if self.validator.is_none() {
            return;
        }
        self.run_validation_sweep();
        if let (Some(v), Some(m)) = (self.validator.as_ref(), self.validate_metrics.as_ref()) {
            let r = v.report();
            let (m_mean, m_max) = (r.estimator_m.mean(), r.estimator_m.max);
            let (n_mean, n_max) = (r.estimator_n.mean(), r.estimator_n.max);
            let reg = self.recorder.metrics_mut();
            reg.set_gauge(m.estimator_m_mean_rel_err, m_mean);
            reg.set_gauge(m.estimator_m_max_rel_err, m_max);
            reg.set_gauge(m.estimator_n_mean_rel_err, n_mean);
            reg.set_gauge(m.estimator_n_max_rel_err, n_max);
        }
    }

    /// `now` as read by `node`'s local clock: the true time plus the
    /// node's injected skew offset, clamped non-negative. Identity (and
    /// allocation/branch-free beyond one `is_empty`) when skew
    /// injection is off. Only spray timestamps go through this —
    /// skew models mis-set device clocks corrupting the Eq. 15
    /// timestamp chain, not a relativistic simulator.
    fn skewed_now(&self, node: NodeId) -> SimTime {
        if self.clock_skew.is_empty() {
            return self.now;
        }
        SimTime::from_secs((self.now.as_secs() + self.clock_skew[node.index()]).max(0.0))
    }

    /// Feeds one counted transmission's size into the `transfer_bytes`
    /// histogram when metrics are attached.
    fn observe_transfer_bytes(&mut self, size: dtn_core::units::Bytes) {
        if let Some(m) = self.metrics.as_ref() {
            self.recorder
                .metrics_mut()
                .observe(m.transfer_bytes, size.as_u64() as f64);
        }
    }

    /// Re-arms every idle live link — all of them, or only those
    /// touching `node`. The single rearm path in the simulator (the
    /// per-tick catch-all and the per-transfer kicks both land here).
    ///
    /// Sorting the collected pairs is a *correctness* requirement, not a
    /// nicety: `links` is a HashMap, and same-instant `TransferComplete`
    /// events apply in push order, so iterating the map directly would
    /// leak its nondeterministic iteration order into the event queue
    /// and break run reproducibility. The pair list lives in a reusable
    /// scratch buffer (`scratch_idle`) so the sweep allocates nothing in
    /// steady state.
    fn rearm_idle_links(&mut self, touching: Option<NodeId>) {
        let mut idle = std::mem::take(&mut self.scratch_idle);
        idle.clear();
        idle.extend(
            self.links
                .iter()
                .filter(|(p, s)| {
                    s.in_flight.is_none() && touching.is_none_or(|n| p.lo() == n || p.hi() == n)
                })
                .map(|(&p, _)| p),
        );
        // Keys are distinct, so unstable sorting yields the same order a
        // stable sort would.
        idle.sort_unstable();
        for &pair in &idle {
            self.try_start_transfer(pair);
        }
        self.scratch_idle = idle;
    }

    /// Read access to the report while building tests.
    pub fn report(&self) -> &Report {
        &self.report
    }

    /// Number of generated messages so far.
    pub fn catalog_len(&self) -> usize {
        self.catalog.len()
    }

    /// Enables or disables priority memoisation on every node's buffer
    /// policy. A *runtime* toggle (not part of [`ScenarioConfig`], so
    /// config hashes and manifests are unaffected): the cache is a pure
    /// optimisation and results are bit-identical either way, which the
    /// differential regression suite enforces by running with it off as
    /// the reference path. Call right after `build` — flipping it
    /// mid-run is safe (the cache self-invalidates) but pointless.
    pub fn set_priority_cache(&mut self, enabled: bool) {
        for node in &mut self.nodes {
            node.policy.set_priority_cache(enabled);
        }
    }

    /// Aggregate priority-cache hit/miss counters across every node's
    /// buffer policy. Policies without a cache contribute nothing, so
    /// the result is `(0, 0)`-shaped for non-SDSRP runs.
    pub fn priority_cache_stats(&self) -> PriorityCacheStats {
        let mut total = PriorityCacheStats::default();
        for node in &self.nodes {
            if let Some(stats) = node.policy.priority_cache_stats() {
                total.merge(stats);
            }
        }
        total
    }
}

/// Returns a removed copy's spray-timestamp allocation to the pool so
/// the next replication reuses it instead of allocating a fresh clone.
/// Purely an allocation-recycling measure: the vector is cleared, so
/// simulation state is untouched.
fn recycle_spray(pool: &mut Vec<Vec<SimTime>>, mut copy: BufferedCopy) {
    if pool.len() < SPRAY_POOL_CAP && copy.spray_times.capacity() > 0 {
        copy.spray_times.clear();
        pool.push(std::mem::take(&mut copy.spray_times));
    }
}

/// Deterministic comparison: deliveries beat relays, then higher
/// priority, then lower message id, then lower sender id.
fn pick_better(a: Candidate, b: Candidate) -> Candidate {
    if a.is_delivery != b.is_delivery {
        return if a.is_delivery { a } else { b };
    }
    match a
        .priority
        .partial_cmp(&b.priority)
        .expect("priorities are never NaN")
    {
        std::cmp::Ordering::Less => b,
        std::cmp::Ordering::Greater => a,
        std::cmp::Ordering::Equal => {
            if (b.msg, b.from) < (a.msg, a.from) {
                b
            } else {
                a
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{presets, PolicyKind, RoutingKind};
    use dtn_core::units::Bytes;
    use dtn_mobility::MobilityConfig;

    /// Two stationary nodes in range: a message generated at one must be
    /// delivered to the other by direct contact.
    fn tiny_two_node(policy: PolicyKind) -> ScenarioConfig {
        ScenarioConfig {
            name: "two-node".into(),
            n_nodes: 2,
            duration_secs: 300.0,
            tick_secs: 1.0,
            mobility: MobilityConfig::Stationary {
                positions: vec![(0.0, 0.0), (50.0, 0.0)],
            },
            link: dtn_net::LinkConfig::paper(),
            buffer_capacity: Bytes::from_mb(2.5),
            message_size: Bytes::from_mb(0.5),
            gen_interval: (50.0, 50.0),
            ttl: SimDuration::from_mins(300.0),
            initial_copies: 4,
            policy,
            routing: RoutingKind::SprayAndWaitBinary,
            seed: 7,
            oracle: false,
            immunity: crate::config::ImmunityMode::None,
            message_size_max: None,
            traffic: Default::default(),
            warmup_secs: 0.0,
            faults: Default::default(),
        }
    }

    #[test]
    fn two_nodes_in_range_deliver_everything() {
        let report = World::build(&tiny_two_node(PolicyKind::Fifo)).run();
        assert!(report.created() >= 5, "created {}", report.created());
        // Source and destination are drawn from {0, 1}: every message's
        // destination is the other node and is permanently in range. A
        // message generated in the last 16 s (one transfer time) may not
        // finish before the simulation ends.
        assert!(
            report.delivered() >= report.created() - 1,
            "delivered {} of {}",
            report.delivered(),
            report.created()
        );
        assert_eq!(report.avg_hopcount(), 1.0);
    }

    #[test]
    fn out_of_range_nodes_never_deliver() {
        let mut cfg = tiny_two_node(PolicyKind::Fifo);
        cfg.mobility = MobilityConfig::Stationary {
            positions: vec![(0.0, 0.0), (5000.0, 0.0)],
        };
        let report = World::build(&cfg).run();
        assert!(report.created() > 0);
        assert_eq!(report.delivered(), 0);
        assert_eq!(report.transmissions(), 0);
    }

    #[test]
    fn delivery_ratio_reasonable_on_smoke_scenario() {
        let mut cfg = presets::smoke();
        cfg.policy = PolicyKind::Sdsrp;
        let report = World::build(&cfg).run();
        assert!(report.created() > 50, "created {}", report.created());
        let ratio = report.delivery_ratio();
        assert!(
            (0.05..=1.0).contains(&ratio),
            "implausible delivery ratio {ratio}"
        );
        assert!(report.transmissions() > 0);
        assert!(report.avg_hopcount() >= 1.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed: u64| {
            let mut cfg = presets::smoke();
            cfg.duration_secs = 1200.0;
            cfg.seed = seed;
            let r = World::build(&cfg).run();
            (
                r.created(),
                r.delivered(),
                r.transmissions(),
                r.buffer_drops(),
            )
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn all_policies_run_the_smoke_scenario() {
        for policy in [
            PolicyKind::Fifo,
            PolicyKind::Lifo,
            PolicyKind::TtlRatio,
            PolicyKind::CopiesRatio,
            PolicyKind::Mofo,
            PolicyKind::Shli,
            PolicyKind::Random,
            PolicyKind::Sdsrp,
        ] {
            let mut cfg = presets::smoke();
            cfg.duration_secs = 900.0;
            cfg.policy = policy;
            let report = World::build(&cfg).run();
            assert!(report.created() > 0, "{policy:?} created nothing");
        }
    }

    #[test]
    fn oracle_mode_runs_and_matches_structure() {
        let mut cfg = presets::smoke();
        cfg.duration_secs = 900.0;
        cfg.policy = PolicyKind::SdsrpOracle { lambda: 1e-3 };
        cfg.oracle = true;
        let report = World::build(&cfg).run();
        assert!(report.created() > 0);
    }

    #[test]
    fn epidemic_and_direct_bracket_spray_and_wait() {
        // Multi-copy schemes beat direct delivery, and epidemic floods
        // far more transmissions. (Epidemic vs Spray-and-Wait delivery
        // can go either way here because the 250 kbps link — 16 s per
        // message — makes contact *bandwidth* the bottleneck, which is
        // exactly the congestion regime the paper targets.)
        let mk = |routing: RoutingKind| {
            let mut cfg = presets::smoke();
            cfg.duration_secs = 2400.0;
            cfg.buffer_capacity = Bytes::from_mb(50.0);
            cfg.policy = PolicyKind::Fifo;
            cfg.routing = routing;
            World::build(&cfg).run()
        };
        let epidemic = mk(RoutingKind::Epidemic);
        let saw = mk(RoutingKind::SprayAndWaitBinary);
        let direct = mk(RoutingKind::Direct);
        assert!(
            epidemic.delivery_ratio() > direct.delivery_ratio(),
            "flooding should beat direct delivery: {} vs {}",
            epidemic.delivery_ratio(),
            direct.delivery_ratio()
        );
        assert!(
            saw.delivery_ratio() > direct.delivery_ratio(),
            "spray-and-wait should beat direct delivery"
        );
        assert!(
            epidemic.transmissions() > saw.transmissions(),
            "epidemic should transmit more than token-limited SAW"
        );
        assert_eq!(direct.overhead_ratio(), 0.0, "direct has zero overhead");
    }

    #[test]
    fn constrained_buffers_force_drops() {
        let mut cfg = presets::smoke();
        cfg.buffer_capacity = Bytes::from_mb(1.0); // two messages max
        cfg.gen_interval = (5.0, 10.0);
        cfg.policy = PolicyKind::Fifo;
        let report = World::build(&cfg).run();
        assert!(
            report.buffer_drops() + report.incoming_rejects() > 0,
            "no buffer pressure despite tiny buffers"
        );
    }

    #[test]
    fn contact_trace_recording() {
        let mut cfg = presets::smoke();
        cfg.duration_secs = 1200.0;
        let mut world = World::build(&cfg);
        world.enable_contact_recording();
        let (_report, trace) = world.run_with_trace();
        assert!(!trace.is_empty(), "no contacts recorded");
        assert_eq!(trace.open_count(), 0, "unclosed contacts at end");
    }

    #[test]
    fn ttl_expiry_purges_copies() {
        let mut cfg = tiny_two_node(PolicyKind::Fifo);
        // Nodes out of range: copies can only die by TTL.
        cfg.mobility = MobilityConfig::Stationary {
            positions: vec![(0.0, 0.0), (5000.0, 0.0)],
        };
        cfg.ttl = SimDuration::from_secs(60.0);
        cfg.duration_secs = 600.0;
        let report = World::build(&cfg).run();
        assert!(report.expirations() > 0);
    }

    #[test]
    fn spray_and_focus_runs() {
        let mut cfg = presets::smoke();
        cfg.duration_secs = 1200.0;
        cfg.routing = RoutingKind::SprayAndFocus {
            handoff_threshold: 60.0,
        };
        let report = World::build(&cfg).run();
        assert!(report.created() > 0);
    }

    #[test]
    fn flapping_contact_aborts_transfers() {
        // Node 0 parked at the origin; node 1 oscillates between x = 60
        // (in range) and x = 150 (out of range) every 30 s, so contacts
        // last ~27 s against a 16 s transfer time: some transfers finish,
        // others are cut off mid-flight and must abort cleanly.
        let mut body = String::from("0 0 0 0\n");
        for k in 0..100 {
            let t = k as f64 * 30.0;
            let x = if k % 2 == 0 { 60.0 } else { 150.0 };
            body.push_str(&format!("1 {t} {x} 0\n"));
        }
        let mut cfg = presets::smoke();
        cfg.name = "flapping".into();
        cfg.n_nodes = 2;
        cfg.duration_secs = 2900.0;
        cfg.mobility = MobilityConfig::TraceText { body };
        cfg.gen_interval = (20.0, 30.0);
        cfg.initial_copies = 2;
        cfg.policy = PolicyKind::Fifo;
        cfg.seed = 5;
        let r = World::build(&cfg).run();
        assert!(r.created() > 50);
        assert!(r.delivered() > 0, "no delivery despite periodic contact");
        assert!(
            r.aborted_transfers() > 0,
            "no transfer was ever cut off by the flapping contact"
        );
        // Aborted transfers never count as transmissions.
        assert!(r.transmissions() >= r.delivered());
    }

    #[test]
    fn single_slot_buffers_still_deliver() {
        // Buffer = exactly one message: every admission is an eviction
        // battle. The system must stay consistent and still deliver.
        let mut cfg = presets::smoke();
        cfg.duration_secs = 2000.0;
        cfg.buffer_capacity = Bytes::from_mb(0.5);
        cfg.message_size = Bytes::from_mb(0.5);
        cfg.policy = PolicyKind::Sdsrp;
        cfg.seed = 9;
        let r = World::build(&cfg).run();
        assert!(r.created() > 0);
        assert!(
            r.buffer_drops() + r.incoming_rejects() > 0,
            "single-slot buffers must churn"
        );
        assert!(r.delivery_ratio() > 0.0, "nothing delivered at all");
    }

    #[test]
    fn warmup_excludes_early_messages_from_metrics() {
        let mut cfg = presets::smoke();
        cfg.duration_secs = 2000.0;
        cfg.seed = 3;
        let cold = World::build(&cfg).run();

        let mut warm_cfg = cfg.clone();
        warm_cfg.warmup_secs = 600.0;
        let warm = World::build(&warm_cfg).run();

        // Warm-up removes roughly 600/2000 of the generated messages
        // from the count, while the simulation itself is unchanged.
        assert!(warm.created() < cold.created());
        assert!(warm.created() > 0);
        assert!(warm.delivered() <= warm.created());
        // Transmissions of uncounted messages are excluded too, so the
        // overhead ratio stays well-defined (not inflated by ghosts).
        assert!(warm.transmissions() < cold.transmissions());
        // With warmup = 0 the default behaviour is bit-identical to the
        // paper configuration.
        let zero = World::build(&cfg).run();
        assert_eq!(zero.created(), cold.created());
        assert_eq!(zero.transmissions(), cold.transmissions());
    }

    #[test]
    #[should_panic(expected = "warm-up must lie within the run")]
    fn warmup_longer_than_run_rejected() {
        let mut cfg = presets::smoke();
        cfg.warmup_secs = cfg.duration_secs + 1.0;
        cfg.validate();
    }

    #[test]
    fn step_until_equals_one_shot_run() {
        let mut cfg = presets::smoke();
        cfg.duration_secs = 1000.0;
        cfg.seed = 8;
        let oneshot = World::build(&cfg).run();

        let mut stepped = World::build(&cfg);
        let mut total_events = 0;
        for k in 1..=10 {
            total_events += stepped.step_until(SimTime::from_secs(k as f64 * 100.0));
            assert_eq!(stepped.now(), SimTime::from_secs(k as f64 * 100.0));
        }
        assert!(total_events > 0);
        assert_eq!(stepped.report().created(), oneshot.created());
        assert_eq!(stepped.report().delivered(), oneshot.delivered());
        assert_eq!(stepped.report().transmissions(), oneshot.transmissions());
        // Inspection accessors are consistent.
        let buffered: usize = (0..cfg.n_nodes)
            .map(|i| stepped.buffered_count(NodeId(i as u32)))
            .sum();
        assert!(buffered > 0, "no copies live at the end of a busy run");
        let _ = stepped.live_contacts();
    }

    #[test]
    fn poisson_traffic_matches_uniform_rate() {
        use crate::config::TrafficModel;
        let run = |traffic: TrafficModel| {
            let mut cfg = presets::smoke();
            cfg.duration_secs = 3000.0;
            cfg.traffic = traffic;
            cfg.seed = 6;
            World::build(&cfg).run().created()
        };
        let uniform = run(TrafficModel::Uniform) as f64;
        let poisson = run(TrafficModel::Poisson) as f64;
        // Same mean rate: counts within ~25% of each other.
        assert!(
            (uniform - poisson).abs() / uniform < 0.25,
            "uniform {uniform} vs poisson {poisson}"
        );
    }

    #[test]
    fn timeseries_records_buffer_pressure() {
        let mut cfg = presets::smoke();
        cfg.duration_secs = 1500.0;
        cfg.gen_interval = (8.0, 12.0);
        let mut world = World::build(&cfg);
        world.enable_timeseries(30.0);
        let (report, ts) = world.run_with_timeseries();
        assert!(report.created() > 0);
        assert!(ts.len() >= 1500 / 30, "too few samples: {}", ts.len());
        // Occupancy must become non-trivial under this load.
        assert!(ts.peak_mean_occupancy() > 0.1);
        // Samples are time-ordered and within the run.
        for w in ts.points().windows(2) {
            assert!(w[1].t > w[0].t);
        }
        assert!(ts.points().last().unwrap().t <= 1500.0);
        let csv = ts.to_csv();
        assert!(csv.lines().count() == ts.len() + 1);
    }

    #[test]
    fn immunity_modes_cut_circulating_copies() {
        use crate::config::ImmunityMode;
        let run = |immunity: ImmunityMode| {
            let mut cfg = presets::smoke();
            cfg.duration_secs = 2000.0;
            cfg.policy = PolicyKind::Fifo;
            cfg.immunity = immunity;
            cfg.seed = 4;
            World::build(&cfg).run()
        };
        let none = run(ImmunityMode::None);
        let flood = run(ImmunityMode::OracleFlood);
        let gossip = run(ImmunityMode::AntipacketGossip);

        assert_eq!(none.immunity_purges(), 0, "paper mode must never purge");
        assert!(flood.immunity_purges() > 0, "oracle flood never purged");
        assert!(gossip.immunity_purges() > 0, "antipackets never purged");
        // Purging delivered messages frees bandwidth/buffers: overhead
        // must not increase.
        assert!(
            flood.overhead_ratio() <= none.overhead_ratio() + 1e-9,
            "oracle immunity raised overhead: {} vs {}",
            flood.overhead_ratio(),
            none.overhead_ratio()
        );
        // And no duplicate deliveries are possible under oracle flood.
        assert_eq!(flood.delivered_events(), flood.delivered());
    }

    #[test]
    fn heterogeneous_message_sizes_run_with_knapsack() {
        let mut cfg = presets::smoke();
        cfg.duration_secs = 1500.0;
        cfg.message_size = Bytes::from_mb(0.2);
        cfg.message_size_max = Some(Bytes::from_mb(1.0));
        cfg.policy = PolicyKind::Knapsack;
        cfg.seed = 2;
        let r = World::build(&cfg).run();
        assert!(r.created() > 0);
        assert!(r.delivery_ratio() > 0.0, "knapsack delivered nothing");
    }

    #[test]
    fn knapsack_matches_greedy_on_uniform_sizes_roughly() {
        // With the paper's uniform 0.5 MB messages the set-wise and
        // greedy rules should land in the same ballpark.
        let run = |policy: PolicyKind| {
            let mut cfg = presets::smoke();
            cfg.duration_secs = 1500.0;
            cfg.policy = policy;
            cfg.seed = 3;
            World::build(&cfg).run().delivery_ratio()
        };
        let knap = run(PolicyKind::Knapsack);
        let ttl = run(PolicyKind::TtlRatio);
        assert!(
            (knap - ttl).abs() < 0.15,
            "knapsack {knap} far from its greedy counterpart {ttl}"
        );
    }

    #[test]
    #[should_panic(expected = "largest message must fit")]
    fn oversized_message_range_rejected() {
        let mut cfg = presets::smoke();
        cfg.message_size_max = Some(Bytes::from_mb(50.0));
        cfg.validate();
    }

    #[test]
    fn validated_smoke_run_is_clean_and_samples_estimators() {
        let mut cfg = presets::smoke();
        cfg.duration_secs = 1800.0;
        cfg.policy = PolicyKind::Sdsrp;
        let mut world = World::build(&cfg);
        world.enable_validation(dtn_validate::ValidateConfig::default());
        let (report, validation, _rec) = world.run_validated();
        assert!(report.created() > 0);
        assert!(
            validation.ok(),
            "invariant violations on a clean run:\n{}",
            validation.summary()
        );
        assert!(validation.sweeps > 0);
        assert!(validation.checks_run > 0);
        assert!(
            validation.estimator_m.samples > 0,
            "estimator oracle never sampled"
        );
        assert_eq!(
            validation.estimator_m.samples,
            validation.estimator_n.samples
        );
    }

    #[test]
    fn validated_epidemic_run_skips_token_conservation() {
        let mut cfg = presets::smoke();
        cfg.duration_secs = 1200.0;
        cfg.routing = RoutingKind::Epidemic;
        cfg.policy = PolicyKind::Fifo;
        let mut world = World::build(&cfg);
        world.enable_validation(dtn_validate::ValidateConfig::default());
        assert!(!world.validator_mut().expect("enabled").conserves_tokens());
        let (report, validation, _rec) = world.run_validated();
        assert!(report.created() > 0);
        assert!(
            validation.ok(),
            "epidemic run flagged:\n{}",
            validation.summary()
        );
    }

    #[test]
    fn seeded_corruption_is_detected_by_next_sweep() {
        let mut cfg = presets::smoke();
        cfg.duration_secs = 1200.0;
        let mut world = World::build(&cfg);
        world.enable_validation(dtn_validate::ValidateConfig::default());
        world.step_until(SimTime::from_secs(600.0));
        world
            .validator_mut()
            .expect("enabled")
            .corrupt_holder_bookkeeping();
        world.step_until(SimTime::from_secs(1200.0));
        let validation = world.take_validation_report().expect("enabled");
        assert!(
            validation
                .violations
                .iter()
                .any(|v| v.check == "holder_mismatch"),
            "seeded n_i corruption went undetected:\n{}",
            validation.summary()
        );
    }

    #[test]
    fn validation_does_not_change_the_run() {
        let mut cfg = presets::smoke();
        cfg.duration_secs = 1500.0;
        cfg.policy = PolicyKind::Sdsrp;
        let plain = World::build(&cfg).run();
        let mut world = World::build(&cfg);
        world.enable_validation(dtn_validate::ValidateConfig::default());
        let (validated, validation, _rec) = world.run_validated();
        assert!(validation.ok(), "{}", validation.summary());
        assert_eq!(plain.created(), validated.created());
        assert_eq!(plain.delivered(), validated.delivered());
        assert_eq!(plain.transmissions(), validated.transmissions());
        assert_eq!(plain.buffer_drops(), validated.buffer_drops());
    }

    #[test]
    fn hopcount_is_one_for_direct_routing() {
        let mut cfg = presets::smoke();
        cfg.duration_secs = 2400.0;
        cfg.routing = RoutingKind::Direct;
        cfg.policy = PolicyKind::Fifo;
        let report = World::build(&cfg).run();
        if report.delivered() > 0 {
            assert_eq!(report.avg_hopcount(), 1.0);
        }
    }
}
