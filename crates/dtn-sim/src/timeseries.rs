//! Per-tick time-series instrumentation (extension).
//!
//! The types live in `dtn-telemetry` (the sampling schedule rides on
//! the [`Recorder`](dtn_telemetry::Recorder)); this module re-exports
//! them so existing `dtn_sim::timeseries` paths keep working.

pub use dtn_telemetry::{TimePoint, TimeSeries};
