//! Shared infrastructure for the figure-regeneration binaries and
//! Criterion benches.
//!
//! Each binary regenerates one paper artefact:
//!
//! | binary      | artefact            | what it prints                                   |
//! |-------------|---------------------|--------------------------------------------------|
//! | `fig3`      | Fig. 3 (a, b)       | intermeeting-time distribution + exponential fit |
//! | `fig4`      | Fig. 4              | priority vs `P(R)` for Taylor k and idealisation |
//! | `fig8`      | Fig. 8 (a–i)        | three RWP sweeps x three metrics                 |
//! | `fig9`      | Fig. 9 (a–i)        | three EPFL-substitute sweeps x three metrics     |
//! | `ablations` | extensions          | estimator/gossip/Taylor/oracle ablations         |
//!
//! All binaries accept `--quick` (reduced duration/points/seeds for a
//! laptop-minutes smoke pass), `--seeds N`, and `--out DIR` to also
//! write CSVs.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use dtn_fleet::{
    locate_worker, run_sweep_fleet, FleetOptions, SubprocessTransport, TcpTransport, Transport,
};
use dtn_sim::config::{PolicyKind, ScenarioConfig};
use dtn_sim::output::{Metric, SeriesTable};
use dtn_sim::sweep::{
    run_sweep_hardened, SweepAxis, SweepCell, SweepCheckpoint, SweepOptions, SweepOutput, SweepSpec,
};
use std::io::Write;
use std::path::PathBuf;

/// Parsed common CLI options.
#[derive(Debug, Clone)]
pub struct Cli {
    /// Reduced-scale run for smoke checks.
    pub quick: bool,
    /// Seeds to average over.
    pub seeds: Vec<u64>,
    /// Optional CSV output directory.
    pub out: Option<PathBuf>,
    /// Optional sweep filter (`copies`, `buffer`, `genrate`).
    pub sweep: Option<String>,
    /// Also print the supplementary delivery-latency panel.
    pub latency: bool,
    /// Run invariant checking + the estimator oracle on (a subset of)
    /// the runs; abort non-zero on any violation.
    pub validate: bool,
    /// Attach the dtn-validate checkers to **every** sweep cell and
    /// fold violation counts into the per-cell results.
    pub validate_cells: bool,
    /// Stream finished sweep cells to a JSONL checkpoint file (one
    /// file per figure group, derived from this stem).
    pub checkpoint: Option<PathBuf>,
    /// Reload the checkpoint and skip already-completed cells.
    pub resume: bool,
    /// Fan sweep cells out across N subprocess workers (0 = run
    /// in-process with `run_sweep_hardened`).
    pub workers: usize,
    /// Explicit path to the `dtn-fleet-worker` binary; defaults to
    /// `locate_worker()` (env var, then the binary's own directory).
    pub worker_bin: Option<PathBuf>,
    /// Fleet backend: `subprocess` (default) spawns workers locally,
    /// `tcp` listens on `--listen` for `dtn-fleet-worker --connect`
    /// peers. Figure binaries that run several sweep groups reuse one
    /// listener across all of them, so TCP workers should be started
    /// with `--reconnect`.
    pub transport: String,
    /// Bind address for `--transport tcp` (default `127.0.0.1:0`; the
    /// chosen port is printed to stderr).
    pub listen: String,
    /// Shared-secret handshake token for `--transport tcp`.
    pub token: Option<String>,
    /// Seconds to wait for each of the first N TCP workers to dial in.
    pub accept_timeout: f64,
}

impl Cli {
    /// Parses `std::env::args`, ignoring unknown flags with a warning.
    pub fn parse() -> Cli {
        let mut cli = Cli {
            quick: false,
            seeds: vec![1, 2, 3],
            out: None,
            sweep: None,
            latency: false,
            validate: false,
            validate_cells: false,
            checkpoint: None,
            resume: false,
            workers: 0,
            worker_bin: None,
            transport: "subprocess".into(),
            listen: "127.0.0.1:0".into(),
            token: None,
            accept_timeout: 30.0,
        };
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--quick" => cli.quick = true,
                "--latency" => cli.latency = true,
                "--validate" => cli.validate = true,
                "--validate-cells" => cli.validate_cells = true,
                "--resume" => cli.resume = true,
                "--checkpoint" => {
                    i += 1;
                    cli.checkpoint = Some(PathBuf::from(
                        args.get(i).expect("--checkpoint needs a path"),
                    ));
                }
                "--seeds" => {
                    i += 1;
                    let n: u64 = args
                        .get(i)
                        .and_then(|s| s.parse().ok())
                        .expect("--seeds needs a number");
                    cli.seeds = (1..=n).collect();
                }
                "--out" => {
                    i += 1;
                    cli.out = Some(PathBuf::from(args.get(i).expect("--out needs a directory")));
                }
                "--sweep" => {
                    i += 1;
                    cli.sweep = Some(args.get(i).expect("--sweep needs a name").clone());
                }
                "--workers" => {
                    i += 1;
                    cli.workers = args
                        .get(i)
                        .and_then(|s| s.parse().ok())
                        .expect("--workers needs a number");
                }
                "--worker-bin" => {
                    i += 1;
                    cli.worker_bin = Some(PathBuf::from(
                        args.get(i).expect("--worker-bin needs a path"),
                    ));
                }
                "--transport" => {
                    i += 1;
                    cli.transport = args.get(i).expect("--transport needs a name").clone();
                }
                "--listen" => {
                    i += 1;
                    cli.listen = args.get(i).expect("--listen needs an address").clone();
                }
                "--token" => {
                    i += 1;
                    cli.token = Some(args.get(i).expect("--token needs a value").clone());
                }
                "--accept-timeout" => {
                    i += 1;
                    cli.accept_timeout = args
                        .get(i)
                        .and_then(|s| s.parse().ok())
                        .expect("--accept-timeout needs a number");
                }
                other => eprintln!("warning: ignoring unknown argument {other:?}"),
            }
            i += 1;
        }
        cli
    }

    /// Whether a sweep named `name` should run under the `--sweep`
    /// filter.
    pub fn wants(&self, name: &str) -> bool {
        self.sweep.as_deref().is_none_or(|s| s == name)
    }
}

/// Runs one scenario with invariant checking and the estimator oracle
/// enabled, printing the validation summary to stderr. Exits non-zero
/// on any violation, so `--validate` runs cannot silently pass on a
/// broken simulator.
pub fn run_checked(cfg: &ScenarioConfig) -> dtn_sim::Report {
    let mut world = dtn_sim::world::World::build(cfg);
    world.enable_validation(dtn_validate::ValidateConfig::default());
    let (report, validation, _rec) = world.run_validated();
    eprintln!(
        "[validate] {} seed {}: {}",
        cfg.name,
        cfg.seed,
        validation.summary()
    );
    if !validation.ok() {
        for v in &validation.violations {
            eprintln!("  {v}");
        }
        std::process::exit(1);
    }
    report
}

/// One of the paper's three sweep groups, at full or `--quick` scale.
pub fn paper_axis(kind: &str, quick: bool) -> SweepAxis {
    match (kind, quick) {
        ("copies", false) => SweepAxis::paper_copies(),
        ("copies", true) => SweepAxis::InitialCopies(vec![16, 32, 64]),
        ("buffer", false) => SweepAxis::paper_buffers(),
        ("buffer", true) => SweepAxis::BufferMb(vec![2.0, 3.5, 5.0]),
        ("genrate", false) => SweepAxis::paper_gen_rates(),
        ("genrate", true) => SweepAxis::GenInterval(vec![(10.0, 15.0), (25.0, 30.0), (45.0, 50.0)]),
        _ => panic!("unknown sweep kind {kind:?}"),
    }
}

/// Applies `--quick` shrinkage to a base scenario (shorter run, fewer
/// nodes) while keeping the congestion character.
pub fn apply_quick(cfg: &mut ScenarioConfig, quick: bool) {
    if quick {
        cfg.duration_secs = 3_600.0;
        cfg.n_nodes = (cfg.n_nodes / 2).max(20);
    }
}

/// Derives a per-figure-group checkpoint path from the user's
/// `--checkpoint` stem, so binaries that run several sweep groups
/// (fig8/fig9 run three) never interleave two groups in one file.
pub fn group_checkpoint_path(stem: &std::path::Path, fig: &str, axis: &str) -> PathBuf {
    let sanitize = |s: &str| {
        s.chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() {
                    c.to_ascii_lowercase()
                } else {
                    '-'
                }
            })
            .collect::<String>()
            .trim_matches('-')
            .to_string()
    };
    let stem_str = stem.to_string_lossy();
    let base = stem_str.strip_suffix(".jsonl").unwrap_or(&stem_str);
    PathBuf::from(format!("{base}-{}-{}.jsonl", sanitize(fig), sanitize(axis)))
}

/// Runs one sweep group and prints the three paper metrics as markdown
/// tables (optionally writing CSVs).
pub fn run_figure_group(
    fig: &str,
    panel_ids: [&str; 3],
    base: &ScenarioConfig,
    axis: SweepAxis,
    policies: Vec<PolicyKind>,
    cli: &Cli,
) -> Vec<SweepCell> {
    let spec = SweepSpec {
        base: base.clone(),
        axis,
        policies,
        seeds: cli.seeds.clone(),
        validate: cli.validate_cells,
    };
    let xlabel = spec.axis.name().to_string();
    let progress = |p: dtn_sim::sweep::SweepProgress| {
        eprint!(
            "\r{fig}: {}/{} runs done (last: {} @ {})    ",
            p.completed, p.total, p.policy, p.axis_label
        );
        let _ = std::io::stderr().flush();
    };
    // Live progress on stderr (stdout carries the markdown tables).
    let checkpoint = cli.checkpoint.as_ref().map(|stem| SweepCheckpoint {
        path: group_checkpoint_path(stem, fig, &xlabel),
        resume: cli.resume,
    });
    let out = if cli.workers > 0 {
        run_group_fleet(fig, &spec, checkpoint, &progress, cli)
    } else {
        let opts = SweepOptions {
            checkpoint,
            progress: Some(&progress),
            ..SweepOptions::default()
        };
        run_sweep_hardened(&spec, &opts)
    };
    eprintln!(
        "\r{fig}: {} runs ({} resumed), {} events ({} delivered, {} dropped, {} contacts)",
        out.cells.iter().map(|c| c.runs).sum::<usize>(),
        out.resumed,
        out.totals.total(),
        out.totals.delivered,
        out.totals.dropped(),
        out.totals.contacts_up,
    );
    if cli.validate_cells && out.violations > 0 {
        eprintln!(
            "{fig}: {} invariant violation(s) across cells",
            out.violations
        );
    }
    for err in &out.errors {
        eprintln!("{fig}: {err}");
    }
    if !out.errors.is_empty() {
        eprintln!(
            "{fig}: {} cell run(s) panicked; their seeds are excluded from the tables",
            out.errors.len()
        );
    }
    let cells = out.cells;
    let mut panels = vec![
        (Metric::DeliveryRatio, panel_ids[0].to_string()),
        (Metric::AvgHopcount, panel_ids[1].to_string()),
        (Metric::OverheadRatio, panel_ids[2].to_string()),
    ];
    if cli.latency {
        // Supplementary panel beyond the paper's three metrics.
        panels.push((Metric::AvgLatency, format!("{}-latency", panel_ids[0])));
    }
    for (metric, panel) in panels {
        let title = format!("{fig}({panel}) {} vs {}", metric.name(), xlabel);
        let table = SeriesTable::from_cells(&title, &xlabel, &cells, metric);
        println!("{}", table.to_markdown());
        if let Some(dir) = &cli.out {
            std::fs::create_dir_all(dir).expect("create out dir");
            let fname = format!("{}_{}.csv", fig.replace(['.', ' '], ""), panel);
            std::fs::write(dir.join(fname), table.to_csv()).expect("write csv");
        }
    }
    cells
}

/// Runs one figure group through the `dtn-fleet` coordinator with
/// subprocess workers instead of in-process threads. Exits non-zero if
/// the worker binary cannot be found or no worker can be spawned —
/// figure regeneration must never silently fall back to a slower mode
/// the operator did not ask for.
fn run_group_fleet(
    fig: &str,
    spec: &SweepSpec,
    checkpoint: Option<SweepCheckpoint>,
    progress: &(dyn Fn(dtn_sim::sweep::SweepProgress) + Sync),
    cli: &Cli,
) -> SweepOutput {
    // One listener for the whole process: fig8/fig9 run three sweep
    // groups back-to-back, and rebinding between them would race
    // `--reconnect` workers dialing the old port. Each group re-arms
    // the blocking accept budget via `expect_workers`.
    static TCP: std::sync::OnceLock<TcpTransport> = std::sync::OnceLock::new();
    let subprocess_holder;
    let transport: &dyn Transport = match cli.transport.as_str() {
        "tcp" => {
            let tcp = TCP.get_or_init(|| {
                let tcp = TcpTransport::bind(&cli.listen)
                    .unwrap_or_else(|e| {
                        eprintln!("{fig}: {e}");
                        std::process::exit(2);
                    })
                    .with_token(cli.token.clone())
                    .with_timeouts(cli.accept_timeout, 30.0);
                eprintln!(
                    "{fig}: listening on {} (token {}); start workers with \
                     `dtn-fleet-worker --connect ADDR --reconnect`",
                    tcp.local_addr(),
                    if cli.token.is_some() {
                        "required"
                    } else {
                        "none"
                    },
                );
                tcp
            });
            tcp.expect_workers(cli.workers);
            tcp
        }
        "subprocess" => {
            let worker_bin = match cli.worker_bin.clone() {
                Some(path) => path,
                None => locate_worker().unwrap_or_else(|e| {
                    eprintln!("{fig}: {e}");
                    std::process::exit(2);
                }),
            };
            let mut transport = SubprocessTransport::new(worker_bin);
            transport.checkpoint = checkpoint.as_ref().map(|ck| ck.path.clone());
            subprocess_holder = transport;
            &subprocess_holder
        }
        other => {
            eprintln!("{fig}: unknown transport {other:?} (subprocess|tcp)");
            std::process::exit(2);
        }
    };
    let opts = FleetOptions {
        workers: cli.workers,
        checkpoint,
        progress: Some(progress),
        ..FleetOptions::default()
    };
    match run_sweep_fleet(spec, transport, &opts) {
        Ok((out, stats)) => {
            eprintln!(
                "\r{fig}: fleet {} workers ({}), {} dispatched, {} retries, {} lost, {:.1}s wall",
                stats.workers,
                stats.transport,
                stats.dispatched,
                stats.retries,
                stats.workers_lost,
                stats.wall_clock_secs,
            );
            out
        }
        Err(e) => {
            eprintln!("{fig}: fleet failed: {e}");
            std::process::exit(2);
        }
    }
}

/// Quick qualitative check used by fig8/fig9: prints whether the
/// paper's headline ordering (SDSRP best delivery, lowest overhead;
/// SAW-C worst delivery) holds on the mean across the sweep.
pub fn print_ordering_summary(cells: &[SweepCell]) {
    use std::collections::HashMap;
    let mut delivery: HashMap<&str, (f64, usize)> = HashMap::new();
    let mut overhead: HashMap<&str, (f64, usize)> = HashMap::new();
    for c in cells {
        let d = delivery.entry(c.policy.as_str()).or_default();
        d.0 += c.delivery_ratio;
        d.1 += 1;
        let o = overhead.entry(c.policy.as_str()).or_default();
        o.0 += c.overhead_ratio;
        o.1 += 1;
    }
    println!("\n#### sweep-mean summary");
    let mut rows: Vec<(&str, f64, f64)> = delivery
        .iter()
        .map(|(&p, &(d, n))| {
            let (o, m) = overhead[&p];
            (p, d / n as f64, o / m as f64)
        })
        .collect();
    rows.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    for (p, d, o) in &rows {
        println!("  {p:<16} delivery {d:.4}  overhead {o:.2}");
    }
    println!();
}
