//! Quick single-point comparison of the paper's four policies at the
//! Table II centre operating point (one seed) — a fast sanity check of
//! the headline ordering before running the full sweeps.
//!
//! `--telemetry BASE` additionally writes one JSONL event log plus run
//! manifest per policy (`BASE-<policy>.jsonl[.manifest.json]`).
//! `--validate` runs every policy with invariant checking and the
//! estimator oracle: the per-policy line gains mean/max relative errors
//! of the Eq. 14/15 estimates, the manifest gains the estimator
//! metrics, and any invariant violation aborts the process non-zero.
//! `--validate-cells` instead routes the four policies through the
//! hardened cell runner: a panicking policy is reported as a structured
//! cell error while the others still run and print.
//! `--churn` runs the delivery-ratio-vs-churn-rate sweep instead: the
//! paper's four policies plus the two congestion-adaptive variants
//! (occupancy gate, tiered retention) across escalating node-crash
//! rates, fully validated, rendered as the headline robustness table.

use dtn_analysis::churn::{ChurnPoint, ChurnTable};
use dtn_sim::replay::manifest_for_run;
use dtn_sim::sweep::{run_cells, run_sweep_observed, CellJob, SweepAxis, SweepOptions, SweepSpec};
use dtn_telemetry::{JsonlSink, Recorder};
use dtn_validate::ValidateConfig;

fn run_hardened_cells() {
    let jobs: Vec<CellJob> = dtn_sim::config::PolicyKind::paper_four()
        .into_iter()
        .map(|policy| {
            let mut cfg = dtn_sim::config::presets::random_waypoint_paper();
            cfg.policy = policy;
            CellJob {
                label: cfg.name.clone(),
                policy: policy.label().to_string(),
                cfg,
            }
        })
        .collect();
    let opts = SweepOptions {
        validate: true,
        ..SweepOptions::default()
    };
    let out = run_cells(jobs, &opts);
    for run in out.runs.iter().flatten() {
        println!(
            "{:<16} ratio {:.3} overhead {:6.2} hops {:.2} violations {}",
            dtn_sim::config::PolicyKind::paper_four()[run.index].label(),
            run.metrics.delivery_ratio,
            run.metrics.overhead_ratio,
            run.metrics.avg_hopcount,
            run.violations,
        );
    }
    for err in &out.errors {
        eprintln!("{err}");
    }
    if !out.errors.is_empty() || out.violations > 0 {
        eprintln!(
            "{} cell error(s), {} invariant violation(s) — failing",
            out.errors.len(),
            out.violations
        );
        std::process::exit(1);
    }
}

/// The delivery-vs-churn headline: every paper policy plus the two
/// congestion-adaptive variants across the standard crash-rate ladder,
/// invariants checked on every run. Scaled to the smoke operating point
/// so the whole grid finishes in seconds.
fn run_churn_table(seeds: Vec<u64>) {
    let mut base = dtn_sim::config::presets::smoke();
    base.n_nodes = 20;
    base.duration_secs = 900.0;
    let mut policies = dtn_sim::config::PolicyKind::paper_four().to_vec();
    policies.push(dtn_sim::config::PolicyKind::OccupancyGate { threshold: 0.8 });
    policies.push(dtn_sim::config::PolicyKind::TieredRetention {
        tiers: 4,
        threshold: 0.9,
    });
    let spec = SweepSpec {
        base,
        axis: SweepAxis::churn_rates(),
        policies,
        seeds,
        validate: true,
    };
    let out = run_sweep_observed(&spec, 0, &|_| {});
    for err in &out.errors {
        eprintln!("{err}");
    }
    if !out.errors.is_empty() || out.violations > 0 {
        eprintln!(
            "{} cell error(s), {} invariant violation(s) under churn — failing",
            out.errors.len(),
            out.violations
        );
        std::process::exit(1);
    }
    let points: Vec<ChurnPoint> = out
        .cells
        .iter()
        .map(|c| ChurnPoint {
            rate: c.axis_value,
            policy: c.policy.clone(),
            delivery_ratio: c.delivery_ratio,
            runs: c.runs,
        })
        .collect();
    let table = ChurnTable::from_points(&points);
    println!("delivery ratio vs node crash rate (crashes/node-hour):\n");
    print!("{}", table.render_markdown());
    println!(
        "\nfaults injected: {} crash(es), {} wiped copies; all invariants held",
        out.totals.node_crashes, out.totals.crash_wiped_copies
    );
}

fn main() {
    let mut telemetry_base: Option<String> = None;
    let mut validate = false;
    let mut validate_cells = false;
    let mut churn = false;
    let mut seeds = vec![1u64, 2];
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--telemetry" => {
                i += 1;
                telemetry_base = Some(args.get(i).expect("--telemetry needs a path").clone());
            }
            "--validate" => validate = true,
            "--validate-cells" => validate_cells = true,
            "--churn" => churn = true,
            "--seeds" => {
                i += 1;
                let n: u64 = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .expect("--seeds needs a count");
                seeds = (1..=n.max(1)).collect();
            }
            other => eprintln!("warning: ignoring unknown argument {other:?}"),
        }
        i += 1;
    }
    if churn {
        run_churn_table(seeds);
        return;
    }
    if validate_cells {
        run_hardened_cells();
        return;
    }

    let mut violations = 0u64;
    for policy in dtn_sim::config::PolicyKind::paper_four() {
        let mut cfg = dtn_sim::config::presets::random_waypoint_paper();
        cfg.policy = policy;
        let mut world = dtn_sim::world::World::build(&cfg);
        let jsonl_path = telemetry_base
            .as_ref()
            .map(|base| format!("{base}-{}.jsonl", policy.label().to_lowercase()));
        if let Some(path) = &jsonl_path {
            let sink =
                JsonlSink::create(std::path::Path::new(path)).expect("create telemetry file");
            world.attach_recorder(Recorder::enabled(1024).with_sink(Box::new(sink)));
        }
        if validate {
            world.enable_validation(ValidateConfig::default());
        }
        let started = std::time::Instant::now();
        let (r, validation, recorder) = if validate {
            let (r, v, rec) = world.run_validated();
            (r, Some(v), rec)
        } else {
            let (r, rec) = world.run_with_recorder();
            (r, None, rec)
        };
        print!(
            "{:<16} ratio {:.3} overhead {:6.2} hops {:.2} drops {} rejects {}",
            policy.label(),
            r.delivery_ratio(),
            r.overhead_ratio(),
            r.avg_hopcount(),
            r.buffer_drops(),
            r.incoming_rejects()
        );
        if let Some(v) = &validation {
            print!(
                "  est-err m {:.3}/{:.3} n {:.3}/{:.3}",
                v.estimator_m.mean(),
                v.estimator_m.max,
                v.estimator_n.mean(),
                v.estimator_n.max
            );
            if !v.ok() {
                violations += v.violation_count;
                eprintln!("\n{}", v.summary());
                for viol in &v.violations {
                    eprintln!("  {viol}");
                }
            }
        }
        println!();
        if let Some(path) = &jsonl_path {
            if let Some(err) = recorder.sink_error() {
                eprintln!("telemetry export to {path} failed: {err}");
                std::process::exit(1);
            }
            let manifest = manifest_for_run(&cfg, &r, &recorder, started.elapsed().as_secs_f64());
            let manifest_path = format!("{path}.manifest.json");
            std::fs::write(&manifest_path, manifest.to_json()).expect("write manifest");
            eprintln!("telemetry: {path} (manifest: {manifest_path})");
        }
    }
    if violations > 0 {
        eprintln!("{violations} invariant violations — failing");
        std::process::exit(1);
    }
}
