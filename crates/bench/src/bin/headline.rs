//! Quick single-point comparison of the paper's four policies at the
//! Table II centre operating point (one seed) — a fast sanity check of
//! the headline ordering before running the full sweeps.
//!
//! `--telemetry BASE` additionally writes one JSONL event log plus run
//! manifest per policy (`BASE-<policy>.jsonl[.manifest.json]`).

use dtn_telemetry::{hash_config_json, JsonlSink, Recorder, RunManifest};

fn main() {
    let mut telemetry_base: Option<String> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--telemetry" => {
                i += 1;
                telemetry_base = Some(args.get(i).expect("--telemetry needs a path").clone());
            }
            other => eprintln!("warning: ignoring unknown argument {other:?}"),
        }
        i += 1;
    }

    for policy in dtn_sim::config::PolicyKind::paper_four() {
        let mut cfg = dtn_sim::config::presets::random_waypoint_paper();
        cfg.policy = policy;
        let mut world = dtn_sim::world::World::build(&cfg);
        let jsonl_path = telemetry_base
            .as_ref()
            .map(|base| format!("{base}-{}.jsonl", policy.label().to_lowercase()));
        if let Some(path) = &jsonl_path {
            let sink =
                JsonlSink::create(std::path::Path::new(path)).expect("create telemetry file");
            world.attach_recorder(Recorder::enabled(1024).with_sink(Box::new(sink)));
        }
        let started = std::time::Instant::now();
        let (r, recorder) = world.run_with_recorder();
        println!(
            "{:<16} ratio {:.3} overhead {:6.2} hops {:.2} drops {} rejects {}",
            policy.label(),
            r.delivery_ratio(),
            r.overhead_ratio(),
            r.avg_hopcount(),
            r.buffer_drops(),
            r.incoming_rejects()
        );
        if let Some(path) = &jsonl_path {
            if let Some(err) = recorder.sink_error() {
                eprintln!("telemetry export to {path} failed: {err}");
                std::process::exit(1);
            }
            let manifest = RunManifest {
                scenario: cfg.name.clone(),
                config_hash: hash_config_json(
                    &serde_json::to_string(&cfg).expect("config serialises"),
                ),
                seed: cfg.seed,
                policy: cfg.policy.label().to_string(),
                routing: format!("{:?}", cfg.routing),
                sim_duration_secs: cfg.duration_secs,
                wall_clock_secs: started.elapsed().as_secs_f64(),
                created: r.created(),
                delivered: r.delivered(),
                dropped: r.buffer_drops() + r.incoming_rejects(),
                events: recorder.totals().clone(),
                events_recorded: recorder.totals().total(),
                ring_overwritten: recorder.ring().overwritten(),
                metrics: recorder.metrics().snapshot(),
            };
            let manifest_path = format!("{path}.manifest.json");
            std::fs::write(&manifest_path, manifest.to_json()).expect("write manifest");
            eprintln!("telemetry: {path} (manifest: {manifest_path})");
        }
    }
}
