//! Quick single-point comparison of the paper's four policies at the
//! Table II centre operating point (one seed) — a fast sanity check of
//! the headline ordering before running the full sweeps.
fn main() {
    for policy in dtn_sim::config::PolicyKind::paper_four() {
        let mut cfg = dtn_sim::config::presets::random_waypoint_paper();
        cfg.policy = policy;
        let r = dtn_sim::world::World::build(&cfg).run();
        println!("{:<16} ratio {:.3} overhead {:6.2} hops {:.2} drops {} rejects {}",
            policy.label(), r.delivery_ratio(), r.overhead_ratio(), r.avg_hopcount(),
            r.buffer_drops(), r.incoming_rejects());
    }
}
