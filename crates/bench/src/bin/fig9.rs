//! Regenerates paper Fig. 9 (a-i): the three sweeps of Fig. 8 under the
//! real-world-trace scenario — here the EPFL/CRAWDAD San-Francisco taxi
//! data is replaced by the `HotspotTaxi` synthetic substitute (200
//! taxis, hotspot city; see DESIGN.md for the substitution argument).
//!
//! Usage mirrors `fig8`:
//!
//! ```text
//! cargo run -p dtn-bench --release --bin fig9 [-- --quick] [--seeds N]
//!     [--sweep copies|buffer|genrate] [--out results/]
//! ```

use dtn_bench::{apply_quick, paper_axis, print_ordering_summary, run_figure_group, Cli};
use dtn_sim::config::{presets, PolicyKind};

fn main() {
    let cli = Cli::parse();
    let mut base = presets::epfl_paper();
    apply_quick(&mut base, cli.quick);
    let policies = PolicyKind::paper_four().to_vec();

    println!(
        "# Fig. 9 — EPFL taxi substitute ({} nodes, {} s, seeds {:?}{})\n",
        base.n_nodes,
        base.duration_secs,
        cli.seeds,
        if cli.quick { ", QUICK" } else { "" }
    );

    if cli.wants("copies") {
        let cells = run_figure_group(
            "Fig.9",
            ["a", "b", "c"],
            &base,
            paper_axis("copies", cli.quick),
            policies.clone(),
            &cli,
        );
        print_ordering_summary(&cells);
    }

    if cli.wants("buffer") {
        let cells = run_figure_group(
            "Fig.9",
            ["d", "e", "f"],
            &base,
            paper_axis("buffer", cli.quick),
            policies.clone(),
            &cli,
        );
        print_ordering_summary(&cells);
    }

    if cli.wants("genrate") {
        let cells = run_figure_group(
            "Fig.9",
            ["g", "h", "i"],
            &base,
            paper_axis("genrate", cli.quick),
            policies,
            &cli,
        );
        print_ordering_summary(&cells);
    }
}
