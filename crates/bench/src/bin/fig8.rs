//! Regenerates paper Fig. 8 (a-i): delivery ratio, average hopcounts and
//! overhead ratio as functions of initial copies (a-c), buffer size
//! (d-f) and message generation rate (g-i) under the random-waypoint
//! mobility pattern (Table II parameters).
//!
//! Usage:
//!
//! ```text
//! cargo run -p dtn-bench --release --bin fig8 [-- --quick] [--seeds N]
//!     [--sweep copies|buffer|genrate] [--out results/]
//! ```

use dtn_bench::{apply_quick, paper_axis, print_ordering_summary, run_figure_group, Cli};
use dtn_sim::config::{presets, PolicyKind};

fn main() {
    let cli = Cli::parse();
    let mut base = presets::random_waypoint_paper();
    apply_quick(&mut base, cli.quick);
    let policies = PolicyKind::paper_four().to_vec();

    println!(
        "# Fig. 8 — random waypoint ({} nodes, {} s, seeds {:?}{})\n",
        base.n_nodes,
        base.duration_secs,
        cli.seeds,
        if cli.quick { ", QUICK" } else { "" }
    );

    if cli.wants("copies") {
        // Fig. 8(a-c): buffer 2.5 MB, gen 25-35 s, L swept.
        let cells = run_figure_group(
            "Fig.8",
            ["a", "b", "c"],
            &base,
            paper_axis("copies", cli.quick),
            policies.clone(),
            &cli,
        );
        print_ordering_summary(&cells);
    }

    if cli.wants("buffer") {
        // Fig. 8(d-f): L = 32, gen 25-35 s, buffer swept.
        let cells = run_figure_group(
            "Fig.8",
            ["d", "e", "f"],
            &base,
            paper_axis("buffer", cli.quick),
            policies.clone(),
            &cli,
        );
        print_ordering_summary(&cells);
    }

    if cli.wants("genrate") {
        // Fig. 8(g-i): L = 32, buffer 2.5 MB, generation interval swept.
        let cells = run_figure_group(
            "Fig.8",
            ["g", "h", "i"],
            &base,
            paper_axis("genrate", cli.quick),
            policies,
            &cli,
        );
        print_ordering_summary(&cells);
    }
}
