//! `dtn-bench` — the macro-benchmark harness that seeds the
//! `BENCH_*.json` performance trajectory.
//!
//! Times three macro scenarios end-to-end (single-threaded worlds):
//!
//! * **headline** — the pinned golden scenario (smoke preset, SDSRP,
//!   seed 42, 3600 s), exactly the config behind
//!   `tests/golden/headline_smoke.json`;
//! * **buffer-pressure** — 80 nodes, 5400 s, one 100 kB message every
//!   3–5 s into 1.5 MB buffers (~15 residents per node): the paper's
//!   small-buffer regime where the per-contact drop ranking dominates
//!   runtime;
//! * **contact-dense** — 120 nodes in the smoke playground: contact
//!   churn (and therefore send scheduling + λ updates) dominates.
//!
//! Each scenario also runs with the SDSRP priority cache disabled (the
//! pre-optimisation algorithm) so every report carries its own
//! cached-vs-uncached speedup, and a sweep-scaling section times the
//! buffer-pressure cell batch on the in-process thread pool (baseline)
//! and on the `dtn-fleet` coordinator at 1/2/4 workers over both the
//! subprocess backend and loopback TCP (`dtn-fleet-worker --connect`
//! children against a `127.0.0.1` listener), asserting every fleet row
//! is bit-identical to the baseline. A
//! thread-scaling section runs one large world (10k nodes; 2k with
//! `--quick`) with the parallel tick phases on 1/2/4/8 intra-run
//! threads, gating on bit-identical fingerprints across all counts.
//! A Taylor-ablation section reproduces the paper's Fig. 4
//! accuracy/compute trade-off as data: for each truncation depth
//! `k ∈ {1, 2, 4, 8, 16}` it reports the analytic worst-case relative
//! error of the Eq. 13 Taylor priority against the exact closed form
//! (swept over a dense delivery-probability grid) next to the
//! buffer-pressure wall clock and delivery ratio at that depth.
//! A congestion section runs the paper's four baseline policies plus
//! the two congestion-adaptive variants (occupancy-gated admission,
//! tiered retention) on the buffer-pressure scenario, recording
//! delivery, latency, drops and incoming rejects per policy.
//! The whole report — wall clock, contacts/sec, events/sec, peak RSS,
//! config hash, cache hit rates, fingerprints — is written as
//! `BENCH_sdsrp.json` (schema `dtn-bench/v6`; see EXPERIMENTS.md
//! §Benchmarking for how to read and compare trajectories).
//!
//! Correctness gate: the headline fingerprint is compared against the
//! committed golden snapshot — at one world thread and again at four —
//! and the process exits non-zero on any mismatch, so a perf "win"
//! that changes behaviour cannot land a trajectory point.
//!
//! ```text
//! cargo run --release -p dtn-bench --bin dtn-bench            # full
//! cargo run --release -p dtn-bench --bin dtn-bench -- --quick # CI smoke
//! dtn-bench [--quick] [--out FILE] [--iters N]
//! ```

use dtn_fleet::{
    locate_worker, run_fleet, FleetOptions, LocalTcpWorkers, SubprocessTransport, TcpTransport,
    Transport,
};
use dtn_sim::config::{presets, PolicyKind, ScenarioConfig};
use dtn_sim::replay::fingerprint;
use dtn_sim::sweep::{run_cells, CellJob, CellRun, SweepOptions};
use dtn_sim::world::World;
use dtn_telemetry::{hash_config_json, peak_rss_bytes, Recorder};
use serde::Serialize;
use std::path::Path;
use std::time::Instant;

/// One timed macro-scenario entry in the JSON report.
#[derive(Serialize)]
struct ScenarioResult {
    name: String,
    config_hash: String,
    sim_duration_secs: f64,
    n_nodes: usize,
    /// Best-of-`iters` wall clock with the priority cache on.
    wall_clock_secs: f64,
    /// Best-of-`iters` wall clock with the cache off (the pre-PR
    /// per-contact recompute path).
    wall_clock_uncached_secs: f64,
    /// `wall_clock_uncached_secs / wall_clock_secs`.
    speedup: f64,
    events_processed: u64,
    events_per_sec: f64,
    contacts_up: u64,
    contacts_per_sec: f64,
    /// Same-instant cache hits (repeated rankings inside one contact).
    cache_hits: u64,
    /// Cross-instant incremental refreshes: only the cheap TTL tail of
    /// Eq. 10 recomputed, everything else reused from the entry.
    cache_incremental: u64,
    /// Full rebuilds (first sight, or an Eq. 10 input changed).
    cache_misses: u64,
    /// `(hits + incremental) / (hits + incremental + misses)`.
    cache_hit_rate: f64,
    /// Process-wide peak RSS after this scenario (monotone high-water
    /// mark — see [`dtn_telemetry::peak_rss_bytes`]).
    peak_rss_bytes: Option<u64>,
    /// Canonical fingerprint JSON of the cached run; the uncached run
    /// must render identically or the harness aborts.
    fingerprint: String,
}

/// One sweep-scaling entry: the buffer-pressure cell batch on `workers`
/// workers of the given transport (`"in-process"` = `run_cells` thread
/// pool, `"subprocess"` = `dtn-fleet` coordinator with stdio
/// `dtn-fleet-worker` children, `"tcp"` = the same children dialing a
/// loopback listener with `--connect`).
#[derive(Serialize)]
struct ScalingResult {
    workers: usize,
    transport: String,
    cells: usize,
    wall_clock_secs: f64,
    events_total: u64,
    events_per_sec: f64,
    /// Every per-cell result (metrics + fingerprint) is bit-identical
    /// to the in-process baseline row. A scaling "win" that changes
    /// behaviour fails the harness.
    fingerprints_match_baseline: bool,
}

/// One intra-run thread-scaling entry: the `parallel-scale` world run
/// to completion with the parallel tick phases (movement sampling,
/// contact-grid query) on `threads` pool threads.
#[derive(Serialize)]
struct ThreadScalingResult {
    threads: usize,
    n_nodes: usize,
    sim_duration_secs: f64,
    wall_clock_secs: f64,
    events_processed: u64,
    events_per_sec: f64,
    /// `wall_clock(1 thread) / wall_clock(this row)`.
    speedup_vs_serial: f64,
    /// The run's fingerprint rendered identically to the 1-thread row.
    /// Any divergence aborts the harness: parallelism must be invisible
    /// in results.
    fingerprint_matches_serial: bool,
}

/// One Fig. 4 ablation row: Eq. 13 truncated to `terms` Taylor terms
/// (`0` = the exact closed form) on the buffer-pressure scenario.
#[derive(Serialize)]
struct TaylorAblationResult {
    /// Taylor truncation depth; `0` means exact Eq. 10.
    terms: usize,
    /// Analytic worst-case relative error of the truncated priority
    /// against the exact closed form, over a dense `pr` grid.
    max_rel_err: f64,
    wall_clock_secs: f64,
    delivery_ratio: f64,
    buffer_drops: u64,
}

/// One congestion-section row: a buffer policy on the buffer-pressure
/// scenario — the paper's four baselines plus the two
/// congestion-adaptive variants (occupancy-gated admission and tiered
/// retention).
#[derive(Serialize)]
struct CongestionResult {
    policy: String,
    wall_clock_secs: f64,
    delivery_ratio: f64,
    /// Mean delivery latency in seconds; `null` when no run delivered.
    avg_latency_secs: Option<f64>,
    buffer_drops: u64,
    incoming_rejects: u64,
}

/// Top-level `BENCH_sdsrp.json` schema.
#[derive(Serialize)]
struct BenchReport {
    schema: String,
    quick: bool,
    iters: usize,
    threads_available: usize,
    /// Headline fingerprint matches the committed golden at one world
    /// thread AND at four.
    golden_fingerprint_ok: bool,
    scenarios: Vec<ScenarioResult>,
    sweep_scaling: Vec<ScalingResult>,
    thread_scaling: Vec<ThreadScalingResult>,
    taylor_ablation: Vec<TaylorAblationResult>,
    congestion: Vec<CongestionResult>,
    peak_rss_bytes: Option<u64>,
}

/// The exact pinned config behind `tests/golden/headline_smoke.json`
/// (keep in sync with `tests/golden_headline.rs`).
fn headline_cfg() -> ScenarioConfig {
    let mut cfg = presets::smoke();
    cfg.policy = PolicyKind::Sdsrp;
    cfg.seed = 42;
    cfg.duration_secs = 3_600.0;
    cfg
}

/// Small buffers + fast generation: drop ranking dominates. 100 kB
/// messages into 1.5 MB buffers give ~15 residents per node, so every
/// overflow ranks a real population instead of the 3 residents the
/// 0.5 MB smoke sizing allowed.
fn buffer_pressure_cfg(quick: bool) -> ScenarioConfig {
    let mut cfg = presets::smoke();
    cfg.name = "buffer-pressure".into();
    cfg.policy = PolicyKind::Sdsrp;
    cfg.seed = 42;
    cfg.n_nodes = 80;
    // The quick variant still needs enough simulated time for the
    // dropped lists to grow: the optimised-vs-reference gap is mostly
    // the streaming gossip merge, whose win scales with list size (and
    // is what the CI `speedup > 1.0` gate measures).
    cfg.duration_secs = if quick { 2_400.0 } else { 5_400.0 };
    cfg.gen_interval = (3.0, 5.0);
    cfg.message_size = dtn_core::units::Bytes::new(100_000);
    cfg.buffer_capacity = dtn_core::units::Bytes::new(1_500_000);
    cfg
}

/// Many nodes in the smoke playground: contact churn dominates.
fn contact_dense_cfg(quick: bool) -> ScenarioConfig {
    let mut cfg = presets::smoke();
    cfg.name = "contact-dense".into();
    cfg.policy = PolicyKind::Sdsrp;
    cfg.seed = 42;
    cfg.n_nodes = 120;
    cfg.duration_secs = if quick { 900.0 } else { 3_600.0 };
    cfg
}

/// Large world at smoke-playground node density where the parallel
/// phases (movement sampling + grid query) dominate the tick.
fn parallel_scale_cfg(quick: bool) -> ScenarioConfig {
    use dtn_mobility::random_waypoint::RandomWaypointConfig;
    let mut cfg = presets::smoke();
    cfg.name = "parallel-scale".into();
    cfg.policy = PolicyKind::Sdsrp;
    cfg.seed = 42;
    cfg.n_nodes = if quick { 2_000 } else { 10_000 };
    // Keep density constant (40 nodes per 2000 x 1500 m) so contact
    // rates per node match the smoke playground.
    let scale = (cfg.n_nodes as f64 / 40.0).sqrt();
    cfg.mobility = dtn_mobility::MobilityConfig::RandomWaypoint(RandomWaypointConfig {
        area: dtn_core::geometry::Rect::from_size(2_000.0 * scale, 1_500.0 * scale),
        min_speed: 2.0,
        max_speed: 2.0,
        min_pause: 0.0,
        max_pause: 0.0,
    });
    cfg.duration_secs = if quick { 120.0 } else { 600.0 };
    cfg.gen_interval = (30.0, 40.0);
    cfg
}

/// Times the `parallel-scale` world once per thread count, gating on
/// bit-identical fingerprints across every row.
fn bench_thread_scaling(quick: bool) -> Vec<ThreadScalingResult> {
    let cfg = parallel_scale_cfg(quick);
    let mut rows: Vec<ThreadScalingResult> = Vec::new();
    let mut serial_wall = 0.0;
    let mut serial_fp = String::new();
    for threads in [1usize, 2, 4, 8] {
        let mut world = World::build(&cfg);
        world.set_threads(threads);
        world.attach_recorder(Recorder::enabled(16));
        let started = Instant::now();
        let events = world.step_until(dtn_core::time::SimTime::from_secs(cfg.duration_secs));
        let wall = started.elapsed().as_secs_f64();
        let totals = world.recorder().totals().clone();
        let fp = fingerprint(world.report(), &totals).to_canonical_json();
        if threads == 1 {
            serial_wall = wall;
            serial_fp = fp.clone();
        }
        let matches = fp == serial_fp;
        if !matches {
            eprintln!(
                "FATAL: parallel-scale fingerprint diverged at {threads} thread(s):\n  serial: {serial_fp}\n  now:    {fp}"
            );
            std::process::exit(1);
        }
        eprintln!(
            "thread-scaling   {threads:>2} world thread(s): {} nodes, {:7.3}s wall ({:.2}x vs serial)",
            cfg.n_nodes,
            wall,
            serial_wall / wall,
        );
        rows.push(ThreadScalingResult {
            threads,
            n_nodes: cfg.n_nodes,
            sim_duration_secs: cfg.duration_secs,
            wall_clock_secs: wall,
            events_processed: events,
            events_per_sec: events as f64 / wall,
            speedup_vs_serial: serial_wall / wall,
            fingerprint_matches_serial: matches,
        });
    }
    rows
}

/// Runs `cfg` once to completion on a fresh world; returns wall clock,
/// events processed, contact count, cache counters and the fingerprint.
fn run_once(
    cfg: &ScenarioConfig,
    cache: bool,
) -> (
    f64,
    u64,
    u64,
    dtn_buffer::policy::PriorityCacheStats,
    String,
) {
    let mut world = World::build(cfg);
    world.set_priority_cache(cache);
    world.attach_recorder(Recorder::enabled(16));
    let started = Instant::now();
    let events = world.step_until(dtn_core::time::SimTime::from_secs(cfg.duration_secs));
    let wall = started.elapsed().as_secs_f64();
    let totals = world.recorder().totals().clone();
    let stats = world.priority_cache_stats();
    let fp = fingerprint(world.report(), &totals).to_canonical_json();
    (wall, events, totals.contacts_up, stats, fp)
}

/// Benchmarks one scenario: best-of-`iters` cached and uncached runs,
/// asserting their fingerprints are bit-identical.
fn bench_scenario(cfg: &ScenarioConfig, iters: usize) -> ScenarioResult {
    let mut cached_best = f64::INFINITY;
    let mut uncached_best = f64::INFINITY;
    let mut events = 0;
    let mut contacts = 0;
    let mut stats = dtn_buffer::policy::PriorityCacheStats::default();
    let mut fp_cached = String::new();
    for _ in 0..iters {
        let (wall, ev, cu, st, fp) = run_once(cfg, true);
        cached_best = cached_best.min(wall);
        (events, contacts, stats, fp_cached) = (ev, cu, st, fp);
    }
    let mut fp_uncached = String::new();
    for _ in 0..iters {
        let (wall, _, _, _, fp) = run_once(cfg, false);
        uncached_best = uncached_best.min(wall);
        fp_uncached = fp;
    }
    if fp_cached != fp_uncached {
        eprintln!(
            "FATAL: {} fingerprint diverged between cached and uncached paths:\n  cached:   {fp_cached}\n  uncached: {fp_uncached}",
            cfg.name
        );
        std::process::exit(1);
    }
    let config_json = serde_json::to_string(cfg).expect("config serialises");
    eprintln!(
        "{:<16} cached {:7.3}s  uncached {:7.3}s  speedup {:.2}x  ({} events, {} contacts, {:.1}% cache hits)",
        cfg.name,
        cached_best,
        uncached_best,
        uncached_best / cached_best,
        events,
        contacts,
        100.0 * stats.hit_rate(),
    );
    ScenarioResult {
        name: cfg.name.clone(),
        config_hash: hash_config_json(&config_json),
        sim_duration_secs: cfg.duration_secs,
        n_nodes: cfg.n_nodes,
        wall_clock_secs: cached_best,
        wall_clock_uncached_secs: uncached_best,
        speedup: uncached_best / cached_best,
        events_processed: events,
        events_per_sec: events as f64 / cached_best,
        contacts_up: contacts,
        contacts_per_sec: contacts as f64 / cached_best,
        cache_hits: stats.hits,
        cache_incremental: stats.incremental,
        cache_misses: stats.misses,
        cache_hit_rate: stats.hit_rate(),
        peak_rss_bytes: peak_rss_bytes(),
        fingerprint: fp_cached,
    }
}

/// The buffer-pressure cell batch (4 seeds x the paper's four
/// policies) every sweep-scaling row runs.
fn scaling_jobs(quick: bool) -> Vec<CellJob> {
    let seeds: &[u64] = if quick { &[1, 2] } else { &[1, 2, 3, 4] };
    seeds
        .iter()
        .flat_map(|&seed| {
            PolicyKind::paper_four().into_iter().map(move |policy| {
                let mut cfg = buffer_pressure_cfg(quick);
                cfg.policy = policy;
                cfg.seed = seed;
                CellJob {
                    label: format!("seed{seed}"),
                    policy: policy.label().to_string(),
                    cfg,
                }
            })
        })
        .collect()
}

/// Times the cell batch on the in-process `run_cells` thread pool; the
/// returned runs are the fingerprint baseline for the fleet rows.
fn bench_scaling_inprocess(quick: bool, threads: usize) -> (ScalingResult, Vec<Option<CellRun>>) {
    let jobs = scaling_jobs(quick);
    let cells = jobs.len();
    let opts = SweepOptions {
        threads,
        ..SweepOptions::default()
    };
    let started = Instant::now();
    let out = run_cells(jobs, &opts);
    let wall = started.elapsed().as_secs_f64();
    if !out.errors.is_empty() {
        for err in &out.errors {
            eprintln!("{err}");
        }
        std::process::exit(1);
    }
    let events_total = out.totals.total();
    eprintln!(
        "sweep-scaling    {threads:>2} in-process thread(s): {cells} cells in {wall:7.3}s ({:.0} events/s)",
        events_total as f64 / wall
    );
    let row = ScalingResult {
        workers: threads,
        transport: "in-process".into(),
        cells,
        wall_clock_secs: wall,
        events_total,
        events_per_sec: events_total as f64 / wall,
        fingerprints_match_baseline: true,
    };
    (row, out.runs)
}

/// Times the cell batch through the `dtn-fleet` coordinator on an
/// already-built transport and checks the per-cell results are
/// bit-identical to the in-process baseline.
fn run_scaling_row(
    quick: bool,
    workers: usize,
    label: &str,
    transport: &dyn Transport,
    baseline: &[Option<CellRun>],
) -> ScalingResult {
    let jobs = scaling_jobs(quick);
    let cells = jobs.len();
    let opts = FleetOptions {
        workers,
        ..FleetOptions::default()
    };
    let started = Instant::now();
    let run = run_fleet(&jobs, transport, &opts).unwrap_or_else(|e| {
        eprintln!("FATAL: fleet scaling row ({workers} {label} workers) failed: {e}");
        std::process::exit(1);
    });
    let wall = started.elapsed().as_secs_f64();
    if !run.output.errors.is_empty() {
        for err in &run.output.errors {
            eprintln!("{err}");
        }
        std::process::exit(1);
    }
    // CellRun equality covers metrics + fingerprint (duration excluded),
    // so this is the same bit-identical gate the fleet tests enforce.
    let fingerprints_match_baseline = run.output.runs == baseline;
    if !fingerprints_match_baseline {
        eprintln!(
            "FATAL: fleet scaling row ({workers} {label} workers) diverged from the in-process baseline"
        );
    }
    let events_total = run.output.totals.total();
    eprintln!(
        "sweep-scaling    {workers:>2} {label} worker(s): {cells} cells in {wall:7.3}s ({:.0} events/s)",
        events_total as f64 / wall
    );
    ScalingResult {
        workers,
        transport: label.into(),
        cells,
        wall_clock_secs: wall,
        events_total,
        events_per_sec: events_total as f64 / wall,
        fingerprints_match_baseline,
    }
}

/// The subprocess-backend scaling row.
fn bench_scaling_fleet(
    quick: bool,
    workers: usize,
    worker_bin: &Path,
    baseline: &[Option<CellRun>],
) -> ScalingResult {
    let transport = SubprocessTransport::new(worker_bin.to_path_buf());
    run_scaling_row(quick, workers, "subprocess", &transport, baseline)
}

/// The loopback-TCP scaling row: a fresh listener on `127.0.0.1:0` and
/// `workers` local `dtn-fleet-worker --connect` children per row.
fn bench_scaling_tcp(
    quick: bool,
    workers: usize,
    worker_bin: &Path,
    baseline: &[Option<CellRun>],
) -> ScalingResult {
    let transport = TcpTransport::bind("127.0.0.1:0").unwrap_or_else(|e| {
        eprintln!("FATAL: tcp scaling row ({workers} workers): {e}");
        std::process::exit(1);
    });
    let _children =
        LocalTcpWorkers::spawn(worker_bin, transport.local_addr(), workers, None, None, &[])
            .unwrap_or_else(|e| {
                eprintln!("FATAL: tcp scaling row ({workers} workers): {e}");
                std::process::exit(1);
            });
    transport.expect_workers(workers);
    run_scaling_row(quick, workers, "tcp", &transport, baseline)
}

/// Analytic worst-case relative error of the `k`-term Eq. 13 Taylor
/// priority against the exact Eq. 11 closed form, swept over a dense
/// delivery-probability grid (`pt = 0`, one holder — both scale the
/// two forms identically, so they cancel in the relative error).
fn taylor_max_rel_err(terms: usize) -> f64 {
    use sdsrp_core::priority::PriorityModel;
    let mut worst = 0.0f64;
    for i in 1..1_000 {
        let pr = i as f64 / 1_000.0;
        let exact = PriorityModel::priority_from_probabilities(0.0, pr, 1);
        let approx = PriorityModel::priority_taylor(0.0, pr, 1, terms);
        if exact > 0.0 {
            worst = worst.max((exact - approx).abs() / exact);
        }
    }
    worst
}

/// The Fig. 4 ablation: the exact closed form plus each Taylor depth on
/// the buffer-pressure scenario — analytic error next to measured wall
/// clock and delivery ratio, so the accuracy/compute trade-off lands in
/// the report as data.
fn bench_taylor_ablation(quick: bool) -> Vec<TaylorAblationResult> {
    let depths: &[usize] = if quick {
        &[0, 1, 8]
    } else {
        &[0, 1, 2, 4, 8, 16]
    };
    depths
        .iter()
        .map(|&terms| {
            let mut cfg = buffer_pressure_cfg(quick);
            cfg.policy = PolicyKind::SdsrpCustom {
                lambda: sdsrp_core::LambdaMode::Online {
                    prior: 1.0 / 2000.0,
                    min_samples: 5,
                },
                taylor_terms: (terms > 0).then_some(terms),
                reject_dropped: true,
                gossip: true,
            };
            let mut world = World::build(&cfg);
            world.attach_recorder(Recorder::enabled(16));
            let started = Instant::now();
            world.step_until(dtn_core::time::SimTime::from_secs(cfg.duration_secs));
            let wall = started.elapsed().as_secs_f64();
            let report = world.report();
            let max_rel_err = if terms == 0 {
                0.0
            } else {
                taylor_max_rel_err(terms)
            };
            eprintln!(
                "taylor-ablation  k={:<2} ({}): {:7.3}s wall, delivery {:.4}, max rel err {:.2e}",
                terms,
                if terms == 0 { "exact" } else { "taylor" },
                wall,
                report.delivery_ratio(),
                max_rel_err,
            );
            TaylorAblationResult {
                terms,
                max_rel_err,
                wall_clock_secs: wall,
                delivery_ratio: report.delivery_ratio(),
                buffer_drops: report.buffer_drops(),
            }
        })
        .collect()
}

/// The congestion section: every paper baseline plus the two
/// congestion-adaptive variants on the buffer-pressure scenario, where
/// admission throttling actually has something to throttle. One run per
/// policy (the section tracks behaviour, not best-of-N timing noise).
fn bench_congestion(quick: bool) -> Vec<CongestionResult> {
    let mut lineup = PolicyKind::paper_four().to_vec();
    lineup.push(PolicyKind::OccupancyGate { threshold: 0.8 });
    lineup.push(PolicyKind::TieredRetention {
        tiers: 4,
        threshold: 0.9,
    });
    lineup
        .into_iter()
        .map(|policy| {
            let mut cfg = buffer_pressure_cfg(quick);
            cfg.policy = policy;
            let started = Instant::now();
            let report = World::build(&cfg).run();
            let wall = started.elapsed().as_secs_f64();
            eprintln!(
                "congestion       {:<16}: {:7.3}s wall, delivery {:.4}, drops {}, rejects {}",
                policy.label(),
                wall,
                report.delivery_ratio(),
                report.buffer_drops(),
                report.incoming_rejects(),
            );
            CongestionResult {
                policy: policy.label().to_string(),
                wall_clock_secs: wall,
                delivery_ratio: report.delivery_ratio(),
                avg_latency_secs: report.avg_latency(),
                buffer_drops: report.buffer_drops(),
                incoming_rejects: report.incoming_rejects(),
            }
        })
        .collect()
}

/// Re-runs the pinned headline scenario on four world threads and
/// checks the fingerprint still matches the committed golden — the
/// incremental cache must be invisible under the parallel tick phases.
fn golden_check_parallel() -> bool {
    let cfg = headline_cfg();
    let mut world = World::build(&cfg);
    world.set_threads(4);
    world.attach_recorder(Recorder::enabled(16));
    world.step_until(dtn_core::time::SimTime::from_secs(cfg.duration_secs));
    let totals = world.recorder().totals().clone();
    let fp = fingerprint(world.report(), &totals).to_canonical_json();
    let ok = golden_check(&fp);
    if !ok {
        eprintln!("FATAL: headline fingerprint diverged from golden at 4 world threads");
    }
    ok
}

/// Re-runs the pinned headline scenario and compares its canonical
/// fingerprint against the committed golden snapshot.
fn golden_check(headline_fp: &str) -> bool {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/golden/headline_smoke.json");
    match std::fs::read_to_string(&path) {
        Ok(committed) => {
            let ok = committed == headline_fp;
            if !ok {
                eprintln!(
                    "FATAL: headline fingerprint drifted from {}:\n  golden: {committed}\n  bench:  {headline_fp}",
                    path.display()
                );
            }
            ok
        }
        Err(e) => {
            eprintln!("FATAL: cannot read golden snapshot {}: {e}", path.display());
            false
        }
    }
}

fn main() {
    let mut quick = false;
    let mut out_path = "BENCH_sdsrp.json".to_string();
    let mut iters: Option<usize> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => quick = true,
            "--out" => {
                i += 1;
                out_path = args.get(i).expect("--out needs a path").clone();
            }
            "--iters" => {
                i += 1;
                iters = Some(
                    args.get(i)
                        .and_then(|s| s.parse().ok())
                        .expect("--iters needs a count"),
                );
            }
            other => {
                eprintln!("unknown argument {other:?} (usage: dtn-bench [--quick] [--out FILE] [--iters N])");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let iters = iters.unwrap_or(if quick { 1 } else { 3 });
    let threads_available = std::thread::available_parallelism().map_or(1, |n| n.get());

    let scenarios: Vec<ScenarioResult> = [
        headline_cfg(),
        buffer_pressure_cfg(quick),
        contact_dense_cfg(quick),
    ]
    .iter()
    .map(|cfg| bench_scenario(cfg, iters))
    .collect();

    let golden_fingerprint_ok = golden_check(&scenarios[0].fingerprint) && golden_check_parallel();

    // Scaling curve: the in-process single-thread baseline, then the
    // dtn-fleet curve at 1/2/4 workers over the subprocess backend and
    // again over loopback TCP. Fleet rows gate on bit-identical
    // per-cell results against the baseline.
    let (baseline_row, baseline_runs) = bench_scaling_inprocess(quick, 1);
    let mut sweep_scaling = vec![baseline_row];
    match locate_worker() {
        Ok(worker_bin) => {
            for workers in [1, 2, 4] {
                sweep_scaling.push(bench_scaling_fleet(
                    quick,
                    workers,
                    &worker_bin,
                    &baseline_runs,
                ));
            }
            for workers in [1, 2, 4] {
                sweep_scaling.push(bench_scaling_tcp(
                    quick,
                    workers,
                    &worker_bin,
                    &baseline_runs,
                ));
            }
        }
        Err(e) => eprintln!(
            "warning: skipping fleet scaling rows ({e}); build the whole workspace to include them"
        ),
    }
    let fleet_scaling_ok = sweep_scaling.iter().all(|r| r.fingerprints_match_baseline);

    // Intra-run thread scaling on one large world (aborts on any
    // fingerprint divergence, so reaching here means all rows agree).
    let thread_scaling = bench_thread_scaling(quick);

    // Fig. 4 as data: accuracy vs compute per Taylor depth.
    let taylor_ablation = bench_taylor_ablation(quick);

    // Congestion-adaptive variants vs the paper's four under pressure.
    let congestion = bench_congestion(quick);

    let report = BenchReport {
        schema: "dtn-bench/v6".into(),
        quick,
        iters,
        threads_available,
        golden_fingerprint_ok,
        scenarios,
        sweep_scaling,
        thread_scaling,
        taylor_ablation,
        congestion,
        peak_rss_bytes: peak_rss_bytes(),
    };
    let body = serde_json::to_string_pretty(&report).expect("report serialises");
    std::fs::write(&out_path, body).unwrap_or_else(|e| {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    });
    eprintln!("bench report written to {out_path}");
    if !golden_fingerprint_ok || !fleet_scaling_ok {
        std::process::exit(1);
    }
}
