//! Regenerates paper Fig. 4: the functional relationship between the
//! priority `U_i` and `P(R_i)` — the idealised Eq. 11 curve with its
//! peak at `P(R) = 1 - 1/e`, and the Eq. 13 Taylor truncations (k = 1,
//! 2, 5, 20) converging towards it.
//!
//! ```text
//! cargo run -p dtn-bench --release --bin fig4 [-- --out DIR]
//! ```

use dtn_bench::Cli;
use sdsrp_core::priority::{PriorityModel, PEAK_PR};
use std::fmt::Write as _;

fn main() {
    let cli = Cli::parse();
    let ks = [1usize, 2, 5, 20];
    let pt = 0.0;
    let holders = 1;

    println!("# Fig. 4 — U_i as a function of P(R_i)  (P(T)=0, n_i=1)\n");
    println!("peak of the idealisation: P(R) = 1 - 1/e = {PEAK_PR:.6}\n");

    let mut md = String::from("| P(R) | idealization |");
    for k in ks {
        let _ = write!(md, " k={k} |");
    }
    md.push('\n');
    md.push_str("|---|---|");
    for _ in ks {
        md.push_str("---|");
    }
    md.push('\n');

    let mut csv = String::from("pr,ideal");
    for k in ks {
        let _ = write!(csv, ",k{k}");
    }
    csv.push('\n');

    let mut argmax = (0.0f64, f64::NEG_INFINITY);
    for i in 0..=40 {
        let pr = i as f64 / 40.0;
        let ideal = PriorityModel::priority_from_probabilities(pt, pr, holders);
        if ideal > argmax.1 {
            argmax = (pr, ideal);
        }
        let _ = write!(md, "| {pr:.3} | {ideal:.4} |");
        let _ = write!(csv, "{pr},{ideal}");
        for k in ks {
            let v = PriorityModel::priority_taylor(pt, pr, holders, k);
            let _ = write!(md, " {v:.4} |");
            let _ = write!(csv, ",{v}");
        }
        md.push('\n');
        csv.push('\n');
    }
    println!("{md}");
    println!(
        "grid argmax at P(R) = {:.3} (expected near {PEAK_PR:.3})",
        argmax.0
    );

    if let Some(dir) = &cli.out {
        std::fs::create_dir_all(dir).expect("create out dir");
        std::fs::write(dir.join("fig4.csv"), csv).expect("write csv");
    }
}
