//! Ablation experiments beyond the paper's figures — each isolates one
//! design choice called out in DESIGN.md. All run at the paper's centre
//! operating point (Table II, L = 32, buffer 2.5 MB, one message per
//! 25-35 s) averaged over the `--seeds` seeds.
//!
//! 1. **λ source** — online estimation (the paper's deployable setting)
//!    vs oracle rates, quantifying estimator error.
//! 2. **Dropped-list gossip** — with vs without record exchange (without
//!    it `d_i` only counts local drops) and with vs without the
//!    receive-reject rule.
//! 3. **Taylor truncation** — Eq. 13 with k = 1/3/8 terms vs the exact
//!    Eq. 10 closed form.
//! 4. **Global knowledge** — SDSRP fed perfect `m_i`/`n_i` by the
//!    simulator (GBSD-style upper bound) vs distributed estimation.
//! 5. **Extra drop policies** — MOFO, SHLI, LIFO and Random against the
//!    paper's four.
//! 6. **Routing substrate** — binary vs source spray, Spray-and-Focus
//!    and Epidemic under both FIFO and SDSRP buffers.
//! 10. **Congestion-adaptive admission** — occupancy-gated acceptance
//!     and tiered retention against the paper's four under buffer
//!     pressure.
//!
//! ```text
//! cargo run -p dtn-bench --release --bin ablations [-- --quick] [--seeds N]
//! ```

use dtn_bench::{apply_quick, run_checked, Cli};
use dtn_core::stats::OnlineStats;
use dtn_sim::config::{presets, PolicyKind, RoutingKind, ScenarioConfig};
use dtn_sim::world::World;
use sdsrp_core::LambdaMode;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Set by `--validate`: the first seed of every variant runs with
/// invariant checking + the estimator oracle (aborting on violations),
/// the remaining seeds run plain.
static VALIDATE: AtomicBool = AtomicBool::new(false);

/// Set by `--validate-cells`: **every** seed of **every** variant runs
/// with invariant checking; violations accumulate (reported at exit,
/// failing the process) instead of aborting mid-table.
static VALIDATE_CELLS: AtomicBool = AtomicBool::new(false);
static CELL_VIOLATIONS: AtomicU64 = AtomicU64::new(0);

fn run_avg(cfg: &ScenarioConfig, seeds: &[u64]) -> (f64, f64, f64) {
    let mut d = OnlineStats::new();
    let mut h = OnlineStats::new();
    let mut o = OnlineStats::new();
    for (k, &seed) in seeds.iter().enumerate() {
        let mut c = cfg.clone();
        c.seed = seed;
        let r = if VALIDATE_CELLS.load(Ordering::Relaxed) {
            let mut world = World::build(&c);
            world.enable_validation(dtn_validate::ValidateConfig::default());
            let (r, validation, _rec) = world.run_validated();
            if !validation.ok() {
                CELL_VIOLATIONS.fetch_add(validation.violation_count, Ordering::Relaxed);
                eprintln!(
                    "[validate-cells] {} seed {}: {}",
                    c.name,
                    c.seed,
                    validation.summary()
                );
            }
            r
        } else if k == 0 && VALIDATE.load(Ordering::Relaxed) {
            run_checked(&c)
        } else {
            World::build(&c).run()
        };
        d.push(r.delivery_ratio());
        h.push(r.avg_hopcount());
        o.push(r.overhead_ratio());
    }
    (
        d.mean().unwrap_or(0.0),
        h.mean().unwrap_or(0.0),
        o.mean().unwrap_or(0.0),
    )
}

fn row(label: &str, cfg: &ScenarioConfig, seeds: &[u64]) {
    let (d, h, o) = run_avg(cfg, seeds);
    println!("| {label} | {d:.4} | {h:.2} | {o:.2} |");
}

fn header(title: &str) {
    println!("\n### {title}\n");
    println!("| variant | delivery | hops | overhead |");
    println!("|---|---|---|---|");
}

fn main() {
    let cli = Cli::parse();
    VALIDATE.store(cli.validate, Ordering::Relaxed);
    VALIDATE_CELLS.store(cli.validate_cells, Ordering::Relaxed);
    let mut base = presets::random_waypoint_paper();
    apply_quick(&mut base, cli.quick);
    let seeds = &cli.seeds;

    println!(
        "# SDSRP ablations (RWP, {} nodes, {} s, seeds {:?})",
        base.n_nodes, base.duration_secs, seeds
    );

    // 1. Lambda source.
    header("1. intermeeting-rate (λ) source");
    for (label, lambda) in [
        (
            "online (paper)",
            LambdaMode::Online {
                prior: 1.0 / 2000.0,
                min_samples: 5,
            },
        ),
        ("oracle 1/500s", LambdaMode::Oracle(1.0 / 500.0)),
        ("oracle 1/2000s", LambdaMode::Oracle(1.0 / 2000.0)),
        ("oracle 1/8000s", LambdaMode::Oracle(1.0 / 8000.0)),
    ] {
        let mut cfg = base.clone();
        cfg.policy = PolicyKind::SdsrpCustom {
            lambda,
            taylor_terms: None,
            reject_dropped: true,
            gossip: true,
        };
        row(label, &cfg, seeds);
    }

    // 2. Dropped-list machinery.
    header("2. dropped-list gossip and receive-reject");
    for (label, gossip, reject) in [
        ("gossip + reject (paper)", true, true),
        ("gossip, no reject", true, false),
        ("no gossip, reject own", false, true),
        ("neither", false, false),
    ] {
        let mut cfg = base.clone();
        cfg.policy = PolicyKind::SdsrpCustom {
            lambda: LambdaMode::Online {
                prior: 1.0 / 2000.0,
                min_samples: 5,
            },
            taylor_terms: None,
            reject_dropped: reject,
            gossip,
        };
        row(label, &cfg, seeds);
    }

    // 3. Taylor truncation.
    header("3. Eq. 13 Taylor truncation vs exact Eq. 10");
    for (label, terms) in [
        ("exact closed form", None),
        ("k = 8", Some(8)),
        ("k = 3", Some(3)),
        ("k = 1", Some(1)),
    ] {
        let mut cfg = base.clone();
        cfg.policy = PolicyKind::SdsrpCustom {
            lambda: LambdaMode::Online {
                prior: 1.0 / 2000.0,
                min_samples: 5,
            },
            taylor_terms: terms,
            reject_dropped: true,
            gossip: true,
        };
        row(label, &cfg, seeds);
    }

    // 4. Global knowledge.
    header("4. estimated vs oracle m_i / n_i (GBSD-style upper bound)");
    {
        let mut cfg = base.clone();
        cfg.policy = PolicyKind::Sdsrp;
        row("distributed estimation (paper)", &cfg, seeds);
        let mut cfg = base.clone();
        cfg.policy = PolicyKind::SdsrpOracle {
            lambda: 1.0 / 2000.0,
        };
        cfg.oracle = true;
        row("oracle m_i/n_i", &cfg, seeds);
    }

    // 5. Extra drop policies.
    header("5. additional buffer policies");
    for policy in [
        PolicyKind::Sdsrp,
        PolicyKind::Fifo,
        PolicyKind::TtlRatio,
        PolicyKind::CopiesRatio,
        PolicyKind::Mofo,
        PolicyKind::Shli,
        PolicyKind::Lifo,
        PolicyKind::Random,
        PolicyKind::Knapsack,
    ] {
        let mut cfg = base.clone();
        cfg.policy = policy;
        row(policy.label(), &cfg, seeds);
    }

    // 6. Routing substrate.
    header("6. routing substrate under FIFO and SDSRP buffers");
    for (rlabel, routing) in [
        ("binary spray", RoutingKind::SprayAndWaitBinary),
        ("source spray", RoutingKind::SprayAndWaitSource),
        (
            "spray-and-focus",
            RoutingKind::SprayAndFocus {
                handoff_threshold: 60.0,
            },
        ),
        ("prophet", RoutingKind::Prophet),
        ("epidemic", RoutingKind::Epidemic),
        ("direct", RoutingKind::Direct),
    ] {
        for policy in [PolicyKind::Fifo, PolicyKind::Sdsrp] {
            let mut cfg = base.clone();
            cfg.routing = routing;
            cfg.policy = policy;
            row(&format!("{rlabel} + {}", policy.label()), &cfg, seeds);
        }
    }

    // 7. Immunity / acknowledgement mechanisms (the paper assumes none).
    header("7. delivery acknowledgements (extension; paper = none)");
    for (label, immunity) in [
        ("none (paper)", dtn_sim::config::ImmunityMode::None),
        (
            "antipacket gossip",
            dtn_sim::config::ImmunityMode::AntipacketGossip,
        ),
        (
            "oracle flood (VACCINE)",
            dtn_sim::config::ImmunityMode::OracleFlood,
        ),
    ] {
        for policy in [PolicyKind::Fifo, PolicyKind::Sdsrp] {
            let mut cfg = base.clone();
            cfg.immunity = immunity;
            cfg.policy = policy;
            row(&format!("{label} + {}", policy.label()), &cfg, seeds);
        }
    }

    // 8. Heterogeneous message sizes (knapsack vs greedy TTL ranking).
    header("8. heterogeneous message sizes 0.2-1.0 MB (extension)");
    for policy in [
        PolicyKind::Knapsack,
        PolicyKind::TtlRatio,
        PolicyKind::Fifo,
        PolicyKind::Sdsrp,
    ] {
        let mut cfg = base.clone();
        cfg.message_size = dtn_core::units::Bytes::from_mb(0.2);
        cfg.message_size_max = Some(dtn_core::units::Bytes::from_mb(1.0));
        cfg.policy = policy;
        row(policy.label(), &cfg, seeds);
    }

    // 9. SDSRP-H: per-destination λ under community mobility, where
    // Eq. 3's single-λ assumption genuinely breaks.
    header("9. SDSRP-H: per-destination λ under clustered-community mobility");
    {
        let clustered = dtn_mobility::MobilityConfig::ClusteredWaypoint(
            dtn_mobility::clustered::ClusteredWaypointConfig::default_communities(),
        );
        for (label, lambda) in [
            (
                "pooled λ (paper)",
                LambdaMode::Online {
                    prior: 1.0 / 2000.0,
                    min_samples: 5,
                },
            ),
            (
                "per-destination λ (SDSRP-H)",
                LambdaMode::OnlinePerDestination {
                    prior: 1.0 / 2000.0,
                    min_samples: 3,
                },
            ),
        ] {
            let mut cfg = base.clone();
            cfg.mobility = clustered.clone();
            cfg.policy = PolicyKind::SdsrpCustom {
                lambda,
                taylor_terms: None,
                reject_dropped: true,
                gossip: true,
            };
            row(label, &cfg, seeds);
        }
        // FIFO reference on the same mobility.
        let mut cfg = base.clone();
        cfg.mobility = clustered;
        cfg.policy = PolicyKind::Fifo;
        row("FIFO reference", &cfg, seeds);
    }

    // 10. Congestion-adaptive admission (occupancy gate and tiered
    // retention) against the paper's four, under buffer pressure:
    // same operating point but 1.5 MB buffers so the thresholds bite.
    header("10. congestion-adaptive variants under buffer pressure (1.5 MB)");
    {
        let mut pressured = base.clone();
        pressured.buffer_capacity = dtn_core::units::Bytes::from_mb(1.5);
        let mut lineup = PolicyKind::paper_four().to_vec();
        lineup.push(PolicyKind::OccupancyGate { threshold: 0.8 });
        lineup.push(PolicyKind::TieredRetention {
            tiers: 4,
            threshold: 0.9,
        });
        for policy in lineup {
            let mut cfg = pressured.clone();
            cfg.policy = policy;
            row(policy.label(), &cfg, seeds);
        }
    }

    let cell_violations = CELL_VIOLATIONS.load(Ordering::Relaxed);
    if cell_violations > 0 {
        eprintln!("{cell_violations} invariant violation(s) across ablation cells — failing");
        std::process::exit(1);
    }
}
