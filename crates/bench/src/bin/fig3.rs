//! Regenerates paper Fig. 3: the distribution of intermeeting times
//! under (a) random waypoint and (b) the taxi-trace substitute, with the
//! exponential fit `f(x) = λ e^{-λx}` the SDSRP model assumes.
//!
//! For each scenario the binary prints the fitted λ (and `E(I)`), the
//! coefficient of variation (1.0 for a true exponential), the
//! Kolmogorov–Smirnov distance, the implied `E(I_min) = E(I)/(N-1)`
//! (Eq. 3), and a binned empirical-vs-fitted density table.
//!
//! ```text
//! cargo run -p dtn-bench --release --bin fig3 [-- --quick] [--out DIR]
//! ```

use dtn_analysis::fit::{density_table, fit_exponential, ks_distance_exponential};
use dtn_bench::Cli;
use dtn_sim::config::presets;
use dtn_sim::world::World;
use std::fmt::Write as _;

fn main() {
    let cli = Cli::parse();

    let clustered = {
        let mut cfg = presets::random_waypoint_paper();
        cfg.name = "clustered-communities".into();
        cfg.mobility = dtn_mobility::MobilityConfig::ClusteredWaypoint(
            dtn_mobility::clustered::ClusteredWaypointConfig::default_communities(),
        );
        cfg
    };
    for (panel, mut cfg) in [
        ("a: random-waypoint", presets::random_waypoint_paper()),
        ("b: EPFL taxi substitute", presets::epfl_paper()),
        ("extension: clustered communities", clustered),
    ] {
        if cli.quick {
            cfg.duration_secs = 6_000.0;
        } else {
            // Pure mobility is cheap: observe for 2x the scenario length
            // so fewer long intermeeting gaps are right-censored by the
            // window (the censoring is what pushes the RWP CV below 1).
            cfg.duration_secs *= 2.0;
        }
        // Traffic is irrelevant for contact statistics; generate almost
        // nothing so the run is pure mobility.
        cfg.gen_interval = (cfg.duration_secs, cfg.duration_secs);
        let n_nodes = cfg.n_nodes;

        let mut world = World::build(&cfg);
        world.enable_contact_recording();
        let (_report, trace) = world.run_with_trace();

        let mut gaps = trace.intermeeting_times();
        let min_gaps = trace.min_intermeeting_times(n_nodes);
        println!("## Fig. 3({panel})");
        println!(
            "contacts: {}   intermeeting samples: {}   min-intermeeting samples: {}",
            trace.len(),
            gaps.len(),
            min_gaps.len()
        );
        let Some(fit) = fit_exponential(&gaps) else {
            println!("not enough samples for a fit\n");
            continue;
        };
        let ks = ks_distance_exponential(&mut gaps, fit.lambda);
        let e_i = fit.mean;
        let e_i_min_eq3 = e_i / (n_nodes as f64 - 1.0);
        let e_i_min_measured = if min_gaps.is_empty() {
            f64::NAN
        } else {
            min_gaps.iter().sum::<f64>() / min_gaps.len() as f64
        };
        println!(
            "E(I) = {e_i:.1} s   lambda = {:.6}/s   CV = {:.3}   KS = {ks:.4}",
            fit.lambda, fit.cv
        );
        println!("E(I_min): Eq. 3 predicts {e_i_min_eq3:.1} s, measured {e_i_min_measured:.1} s");

        let x_max = e_i * 4.0;
        let rows = density_table(&gaps, &fit, x_max, 16);
        let mut table = String::new();
        let _ = writeln!(table, "\n| x (s) | empirical density | fitted λe^-λx |");
        let _ = writeln!(table, "|---|---|---|");
        for r in &rows {
            let _ = writeln!(
                table,
                "| {:.0} | {:.3e} | {:.3e} |",
                r.x, r.empirical, r.fitted
            );
        }
        println!("{table}");

        if let Some(dir) = &cli.out {
            std::fs::create_dir_all(dir).expect("create out dir");
            let mut csv = String::from("x,empirical,fitted\n");
            for r in &rows {
                let _ = writeln!(csv, "{},{},{}", r.x, r.empirical, r.fitted);
            }
            let name = format!("fig3_{}.csv", panel.chars().next().unwrap());
            std::fs::write(dir.join(name), csv).expect("write csv");
        }
    }
}
