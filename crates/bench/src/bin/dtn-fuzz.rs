//! Scenario fuzzer: hammer the simulator with seeded random scenarios
//! under full invariant checking.
//!
//! Every case comes from `dtn_sim::scenario_gen::random_scenario`, the
//! same generator the property tests draw from, so a failure replays
//! from its seed alone:
//!
//! ```text
//! dtn-fuzz --cells 50 --validate             # the nightly CI job
//! dtn-fuzz --cells 1 --seed 1234 --validate  # replay case 1234
//! dtn-fuzz --cells 50 --validate --faults    # churn fuzzing
//! ```
//!
//! `--faults` attaches `random_fault_plan(seed)` to every case: random
//! crash/reboot churn, radio blackouts, transfer aborts and clock skew,
//! drawn from a seed-paired RNG so the fault plan is as replayable as
//! the scenario itself.
//!
//! Cells run through the hardened runner (`run_cells`): a panicking
//! case is reported as a structured `CellError` (with the full config
//! JSON for triage) and the remaining cases still run. With
//! `--checkpoint` the finished cases stream to a JSONL file and
//! `--resume` skips them on the next invocation. Exit status is
//! non-zero if any case panicked or violated an invariant.

use dtn_sim::scenario_gen::{random_fault_plan, random_scenario};
use dtn_sim::sweep::{run_cells, CellJob, SweepCheckpoint, SweepOptions};
use dtn_telemetry::manifest::hash_config_json;
use dtn_telemetry::SweepEvent;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::Mutex;

struct FuzzCli {
    cells: u64,
    seed: u64,
    validate: bool,
    faults: bool,
    threads: usize,
    world_threads: usize,
    checkpoint: Option<PathBuf>,
    resume: bool,
    events: Option<PathBuf>,
}

fn usage() -> ! {
    eprintln!(
        "usage: dtn-fuzz [--cells N] [--seed BASE] [--validate] [--faults]\n\
         \x20               [--threads N] [--world-threads N]\n\
         \x20               [--checkpoint PATH [--resume]] [--events PATH]\n\
         \n\
         Runs N random scenarios (generator seeds BASE..BASE+N) through the\n\
         hardened cell runner. --validate attaches the dtn-validate checkers\n\
         to every run. --faults attaches a seeded random fault plan (node\n\
         crashes, blackouts, transfer aborts, clock skew) to every case.\n\
         --threads fans cases out across workers; --world-threads runs\n\
         each world's parallel tick phases on N threads (results are\n\
         bit-identical either way).\n\
         --events streams structured lifecycle events as JSONL.\n\
         Exits non-zero on any panic or invariant violation."
    );
    std::process::exit(2);
}

fn parse() -> FuzzCli {
    let mut cli = FuzzCli {
        cells: 50,
        seed: 1,
        validate: false,
        faults: false,
        threads: 0,
        world_threads: 1,
        checkpoint: None,
        resume: false,
        events: None,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--cells" => {
                i += 1;
                cli.cells = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--seed" => {
                i += 1;
                cli.seed = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--threads" => {
                i += 1;
                cli.threads = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--world-threads" => {
                i += 1;
                cli.world_threads = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--validate" => cli.validate = true,
            "--faults" => cli.faults = true,
            "--resume" => cli.resume = true,
            "--checkpoint" => {
                i += 1;
                cli.checkpoint = Some(PathBuf::from(args.get(i).unwrap_or_else(|| usage())));
            }
            "--events" => {
                i += 1;
                cli.events = Some(PathBuf::from(args.get(i).unwrap_or_else(|| usage())));
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument {other:?}");
                usage();
            }
        }
        i += 1;
    }
    cli
}

fn main() {
    let cli = parse();

    let event_log = cli.events.as_ref().map(|p| {
        Mutex::new(std::fs::File::create(p).unwrap_or_else(|e| {
            eprintln!("cannot create event log {}: {e}", p.display());
            std::process::exit(2);
        }))
    });
    let log_event = |ev: &SweepEvent| {
        if let Some(f) = &event_log {
            let mut f = f.lock().expect("event log lock");
            let _ = writeln!(f, "{}", ev.to_jsonl());
        }
    };

    // Generate the cases up front: deterministic in (--seed, --cells).
    let mut jobs = Vec::with_capacity(cli.cells as usize);
    for i in 0..cli.cells {
        let gen_seed = cli.seed + i;
        let mut cfg = random_scenario(gen_seed);
        if cli.faults {
            cfg.faults = random_fault_plan(gen_seed);
        }
        let config_json = serde_json::to_string(&cfg).expect("config serialises");
        log_event(&SweepEvent::FuzzCaseGenerated {
            index: i,
            seed: gen_seed,
            config_hash: hash_config_json(&config_json),
            policy: cfg.policy.label().to_string(),
            routing: format!("{:?}", cfg.routing),
            n_nodes: cfg.n_nodes as u64,
        });
        jobs.push(CellJob {
            label: cfg.name.clone(),
            policy: cfg.policy.label().to_string(),
            cfg,
        });
    }

    let progress = |p: dtn_sim::sweep::SweepProgress| {
        eprint!(
            "\rfuzz: {}/{} cases done (last: {} @ {})    ",
            p.completed, p.total, p.policy, p.axis_label
        );
        let _ = std::io::stderr().flush();
    };
    let opts = SweepOptions {
        threads: cli.threads,
        validate: cli.validate,
        checkpoint: cli.checkpoint.as_ref().map(|path| SweepCheckpoint {
            path: path.clone(),
            resume: cli.resume,
        }),
        progress: Some(&progress),
        events: Some(&log_event),
        world_threads: cli.world_threads,
    };
    let out = run_cells(jobs, &opts);
    eprintln!();

    println!(
        "dtn-fuzz: {} cases ({} executed, {} resumed), {} panicked, {} invariant violation(s), validation {}",
        out.runs.len(),
        out.executed,
        out.resumed,
        out.errors.len(),
        out.violations,
        if cli.validate { "on" } else { "off" },
    );
    if cli.faults {
        println!(
            "faults: {} crash(es), {} blackout(s), {} injected abort(s) across all cases",
            out.totals.node_crashes, out.totals.blackouts, out.totals.fault_aborts,
        );
    }
    println!(
        "events: {} total ({} delivered, {} dropped, {} contacts)",
        out.totals.total(),
        out.totals.delivered,
        out.totals.dropped(),
        out.totals.contacts_up,
    );

    // Full triage payload per failure: the panic, the replay seed, and
    // the exact config JSON (feed it back via --seed, or hand-edit and
    // run with dtn-scenario).
    for err in &out.errors {
        eprintln!("\n{err}");
        eprintln!(
            "  replay: dtn-fuzz --cells 1 --seed {}{}",
            cli.seed + err.index as u64,
            if cli.faults { " --faults" } else { "" }
        );
        eprintln!("  config: {}", err.config);
    }

    if !out.errors.is_empty() || (cli.validate && out.violations > 0) {
        std::process::exit(1);
    }
}
