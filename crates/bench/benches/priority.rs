//! Micro-bench: the SDSRP priority computation (Eq. 10 closed form vs
//! the Eq. 13 Taylor truncations) and the Eq. 15 spray-tree estimator —
//! the paper argues Taylor truncation "saves computation overhead";
//! this bench quantifies that claim on our implementation.

use criterion::{criterion_group, criterion_main, Criterion};
use dtn_core::time::SimTime;
use sdsrp_core::estimator::estimate_m;
use sdsrp_core::priority::PriorityModel;
use std::hint::black_box;

fn bench_priority(c: &mut Criterion) {
    let model = PriorityModel::new(100, 1.0 / 2000.0);
    let cases: Vec<(u32, u32, u32, f64)> = (0..64)
        .map(|i| (i % 40, 1 + i % 20, 1 + i % 32, 100.0 + 270.0 * i as f64))
        .collect();

    let mut g = c.benchmark_group("priority");

    g.bench_function("eq10_closed_form", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &(m, n, cc, r) in &cases {
                acc += model.priority(m, n, cc, r);
            }
            black_box(acc)
        })
    });

    g.bench_function("log_priority", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &(m, n, cc, r) in &cases {
                acc += model.log_priority(m, n, cc, r);
            }
            black_box(acc)
        })
    });

    for k in [1usize, 4, 16, 64] {
        g.bench_function(format!("eq13_taylor_k{k}"), |b| {
            b.iter(|| {
                let mut acc = 0.0;
                for &(m, n, cc, r) in &cases {
                    acc += model.log_priority_taylor(m, n, cc, r, k);
                }
                black_box(acc)
            })
        });
    }

    let spray_times: Vec<SimTime> = (0..6)
        .map(|i| SimTime::from_secs(i as f64 * 500.0))
        .collect();
    g.bench_function("eq15_estimate_m", |b| {
        b.iter(|| {
            black_box(estimate_m(
                black_box(&spray_times),
                SimTime::from_secs(5000.0),
                20.2,
                100,
            ))
        })
    });

    g.finish();
}

criterion_group!(benches, bench_priority);
criterion_main!(benches);
