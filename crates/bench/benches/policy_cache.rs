//! Micro-bench: the full `BufferPolicy` dispatch of SDSRP's
//! `send_priority`/`keep_priority` over a realistic buffer, with the
//! priority memo cache on vs off — the per-message cost the world pays
//! on every contact (complements `priority.rs`, which times the raw
//! Eq. 10/13/15 arithmetic without the policy wrapper or cache).

use criterion::{criterion_group, criterion_main, Criterion};
use dtn_buffer::policy::BufferPolicy;
use dtn_buffer::view::TestMessage;
use dtn_core::ids::{MessageId, NodeId};
use dtn_core::time::SimTime;
use sdsrp_core::{Sdsrp, SdsrpConfig};
use std::hint::black_box;

const NOW: f64 = 4_000.0;

/// A buffer of `n` messages with varied copies and spray histories —
/// roughly what a pressured smoke-scenario node holds.
fn buffer(n: usize) -> Vec<TestMessage> {
    (0..n)
        .map(|i| {
            let mut m = TestMessage::sample(i as u64);
            m.id = MessageId(i as u64);
            m.copies = 1 + (i as u32 % 16);
            m.spray_times = (0..i % 5)
                .map(|k| SimTime::from_secs(500.0 * (k + 1) as f64))
                .collect();
            m
        })
        .collect()
}

/// An SDSRP policy with a warmed-up λ estimator (two closed contacts),
/// cache toggled per the argument.
fn policy(cached: bool) -> Sdsrp {
    let mut p = Sdsrp::new(NodeId(0), SdsrpConfig::paper(100));
    p.set_priority_cache(cached);
    for (up, down) in [(100.0, 160.0), (900.0, 950.0)] {
        p.on_contact_up(SimTime::from_secs(up), NodeId(7));
        p.on_contact_down(SimTime::from_secs(down), NodeId(7));
    }
    p.on_contact_up(SimTime::from_secs(1_800.0), NodeId(7));
    p.on_contact_down(SimTime::from_secs(1_850.0), NodeId(7));
    p
}

fn bench_policy_cache(c: &mut Criterion) {
    let msgs = buffer(64);
    let now = SimTime::from_secs(NOW);
    let mut g = c.benchmark_group("policy_cache");

    for (label, cached) in [("cached", true), ("uncached", false)] {
        g.bench_function(format!("send_priority_{label}"), |b| {
            let mut p = policy(cached);
            b.iter(|| {
                let mut acc = 0.0;
                for m in &msgs {
                    acc += p.send_priority(now, &m.view());
                }
                black_box(acc)
            })
        });

        g.bench_function(format!("keep_priority_{label}"), |b| {
            let mut p = policy(cached);
            b.iter(|| {
                let mut acc = 0.0;
                for m in &msgs {
                    acc += p.keep_priority(now, &m.view());
                }
                black_box(acc)
            })
        });
    }

    g.finish();
}

criterion_group!(benches, bench_policy_cache);
criterion_main!(benches);
