//! Micro-bench: the discrete-event queue, the innermost loop of every
//! simulation run.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dtn_core::event::EventQueue;
use dtn_core::time::SimTime;
use std::hint::black_box;

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");

    g.bench_function("push_pop_10k_sorted", |b| {
        b.iter_batched(
            EventQueue::<u32>::new,
            |mut q| {
                for i in 0..10_000u32 {
                    q.push(SimTime::from_secs(i as f64), i);
                }
                while let Some(ev) = q.pop() {
                    black_box(ev);
                }
            },
            BatchSize::SmallInput,
        )
    });

    g.bench_function("push_pop_10k_interleaved", |b| {
        // The simulator's realistic pattern: pops interleaved with pushes
        // of near-future events.
        b.iter_batched(
            || {
                let mut q = EventQueue::new();
                for i in 0..1_000u32 {
                    q.push(SimTime::from_secs(i as f64), i);
                }
                q
            },
            |mut q| {
                for i in 0..9_000u32 {
                    let (t, ev) = q.pop().expect("queue never empties");
                    black_box(ev);
                    q.push(
                        t + dtn_core::time::SimDuration::from_secs((i % 17) as f64 + 1.0),
                        i,
                    );
                }
            },
            BatchSize::SmallInput,
        )
    });

    g.finish();
}

criterion_group!(benches, bench_event_queue);
criterion_main!(benches);
