//! Telemetry-cost bench: the same smoke run with no recorder, a
//! disabled recorder (the default every `World` carries) and a
//! counting-only recorder — the disabled path must stay within noise of
//! the no-recorder baseline (<2% is the acceptance bar), plus a
//! micro-bench of the raw `Recorder::record` call in both states.

use criterion::{criterion_group, criterion_main, Criterion, SamplingMode};
use dtn_sim::config::presets;
use dtn_sim::world::World;
use dtn_telemetry::{Recorder, SimEvent};
use std::hint::black_box;

fn smoke_cfg() -> dtn_sim::config::ScenarioConfig {
    let mut cfg = presets::smoke();
    cfg.duration_secs = 600.0;
    cfg
}

fn bench_run_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("telemetry_run");
    g.sample_size(10);
    g.sampling_mode(SamplingMode::Flat);

    g.bench_function("smoke_600s_baseline", |b| {
        b.iter(|| {
            let report = World::build(&smoke_cfg()).run();
            black_box(report.delivered())
        })
    });

    g.bench_function("smoke_600s_recorder_disabled", |b| {
        b.iter(|| {
            let mut world = World::build(&smoke_cfg());
            world.attach_recorder(Recorder::disabled());
            let (report, _rec) = world.run_with_recorder();
            black_box(report.delivered())
        })
    });

    g.bench_function("smoke_600s_recorder_counting", |b| {
        b.iter(|| {
            let mut world = World::build(&smoke_cfg());
            world.attach_recorder(Recorder::enabled(0));
            let (report, rec) = world.run_with_recorder();
            black_box((report.delivered(), rec.totals().total()))
        })
    });

    g.finish();
}

fn bench_record_call(c: &mut Criterion) {
    let mut g = c.benchmark_group("telemetry_record");

    g.bench_function("record_disabled", |b| {
        let mut r = Recorder::disabled();
        let mut t = 0.0;
        b.iter(|| {
            t += 1.0;
            r.record(|| SimEvent::ContactUp {
                t: black_box(t),
                a: 1,
                b: 2,
            });
            black_box(r.totals().total())
        })
    });

    g.bench_function("record_counting", |b| {
        let mut r = Recorder::enabled(0);
        let mut t = 0.0;
        b.iter(|| {
            t += 1.0;
            r.record(|| SimEvent::ContactUp {
                t: black_box(t),
                a: 1,
                b: 2,
            });
            black_box(r.totals().total())
        })
    });

    g.finish();
}

criterion_group!(benches, bench_run_overhead, bench_record_call);
criterion_main!(benches);
