//! Macro-bench: whole simulated seconds per wall second, per buffer
//! policy — the end-to-end cost of a scenario run, and the figure that
//! decides how long a full Fig. 8/9 sweep takes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, SamplingMode};
use dtn_sim::config::{presets, PolicyKind};
use dtn_sim::world::World;
use std::hint::black_box;

fn bench_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_run");
    // Full runs are seconds-long: keep criterion's sample demands sane.
    g.sample_size(10);
    g.sampling_mode(SamplingMode::Flat);

    for policy in [PolicyKind::Fifo, PolicyKind::Sdsrp] {
        g.bench_with_input(
            BenchmarkId::new("smoke_600s", policy.label()),
            &policy,
            |b, &policy| {
                b.iter(|| {
                    let mut cfg = presets::smoke();
                    cfg.duration_secs = 600.0;
                    cfg.policy = policy;
                    let report = World::build(&cfg).run();
                    black_box(report.delivered())
                })
            },
        );
    }

    g.bench_function("paper_rwp_1800s_sdsrp", |b| {
        b.iter(|| {
            let mut cfg = presets::random_waypoint_paper();
            cfg.duration_secs = 1800.0;
            let report = World::build(&cfg).run();
            black_box(report.delivered())
        })
    });

    g.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
