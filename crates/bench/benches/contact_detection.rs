//! Micro-bench: spatial-grid contact detection — executed once per
//! movement tick, the simulator's per-tick fixed cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dtn_core::geometry::{Point2, Rect};
use dtn_core::grid::SpatialGrid;
use dtn_core::ids::NodeId;
use dtn_core::rng::{stream_rng, streams, uniform_range};
use dtn_core::time::SimTime;
use dtn_net::contact::ContactTracker;
use std::hint::black_box;

fn positions(n: usize, seed: u64) -> Vec<Point2> {
    let mut rng = stream_rng(seed, streams::BENCH);
    (0..n)
        .map(|_| {
            Point2::new(
                uniform_range(&mut rng, 0.0, 4500.0),
                uniform_range(&mut rng, 0.0, 3400.0),
            )
        })
        .collect()
}

fn bench_grid(c: &mut Criterion) {
    let mut g = c.benchmark_group("contact_detection");
    for &n in &[100usize, 400, 1600] {
        let pos = positions(n, 1);
        g.bench_with_input(BenchmarkId::new("grid_rebuild_pairs", n), &pos, |b, pos| {
            let mut grid = SpatialGrid::new(Rect::from_size(4500.0, 3400.0), 100.0);
            let mut out: Vec<(NodeId, NodeId)> = Vec::new();
            b.iter(|| {
                grid.rebuild(pos);
                out.clear();
                grid.pairs_within(100.0, &mut out);
                black_box(out.len())
            })
        });
    }

    // Tracker diffing across two alternating position sets (forces
    // up/down event churn).
    let a = positions(100, 1);
    let b_pos = positions(100, 2);
    g.bench_function("tracker_update_100", |b| {
        let mut tracker = ContactTracker::new(Rect::from_size(4500.0, 3400.0), 100.0);
        let mut events = Vec::new();
        let mut t = 0.0f64;
        b.iter(|| {
            t += 1.0;
            events.clear();
            let pos = if (t as u64).is_multiple_of(2) {
                &a
            } else {
                &b_pos
            };
            tracker.update(SimTime::from_secs(t), pos, &mut events);
            black_box(events.len())
        })
    });

    g.finish();
}

criterion_group!(benches, bench_grid);
criterion_main!(benches);
