//! Stationary "mobility": nodes that never move.
//!
//! Useful as infrastructure (throwboxes, base stations) and for unit
//! tests that need fully predictable contact geometry.

use crate::model::Mobility;
use dtn_core::geometry::Point2;
use dtn_core::time::SimTime;
use serde::{Deserialize, Serialize};

/// A node pinned at a fixed position.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Stationary {
    /// The fixed position.
    pub position: Point2,
}

impl Stationary {
    /// A node at `position`.
    pub fn new(position: Point2) -> Self {
        Stationary { position }
    }
}

impl Mobility for Stationary {
    fn position_at(&mut self, _t: SimTime) -> Point2 {
        self.position
    }
}

/// A scripted trajectory defined by explicit `(time, position)` keyframes
/// with linear interpolation — mainly for deterministic tests of contact
/// detection and transfer timing.
#[derive(Debug, Clone)]
pub struct Scripted {
    keyframes: Vec<(SimTime, Point2)>,
}

impl Scripted {
    /// Builds a scripted trajectory.
    ///
    /// # Panics
    /// Panics if `keyframes` is empty or timestamps are not strictly
    /// increasing.
    pub fn new(keyframes: Vec<(SimTime, Point2)>) -> Self {
        assert!(!keyframes.is_empty(), "scripted mobility needs keyframes");
        for w in keyframes.windows(2) {
            assert!(w[0].0 < w[1].0, "keyframes must be strictly increasing");
        }
        Scripted { keyframes }
    }
}

impl Mobility for Scripted {
    fn position_at(&mut self, t: SimTime) -> Point2 {
        let ks = &self.keyframes;
        if t <= ks[0].0 {
            return ks[0].1;
        }
        if t >= ks[ks.len() - 1].0 {
            return ks[ks.len() - 1].1;
        }
        // Find the bracketing pair.
        let idx = ks.partition_point(|&(kt, _)| kt <= t);
        let (t0, p0) = ks[idx - 1];
        let (t1, p1) = ks[idx];
        let f = (t - t0).as_secs() / (t1 - t0).as_secs();
        p0.lerp(p1, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn stationary_never_moves() {
        let mut s = Stationary::new(Point2::new(5.0, 6.0));
        assert_eq!(s.position_at(t(0.0)), Point2::new(5.0, 6.0));
        assert_eq!(s.position_at(t(1e6)), Point2::new(5.0, 6.0));
    }

    #[test]
    fn scripted_interpolates() {
        let mut s = Scripted::new(vec![
            (t(0.0), Point2::new(0.0, 0.0)),
            (t(10.0), Point2::new(10.0, 0.0)),
            (t(20.0), Point2::new(10.0, 20.0)),
        ]);
        assert_eq!(s.position_at(t(0.0)), Point2::new(0.0, 0.0));
        assert_eq!(s.position_at(t(5.0)), Point2::new(5.0, 0.0));
        assert_eq!(s.position_at(t(15.0)), Point2::new(10.0, 10.0));
        // Clamped outside the script.
        assert_eq!(s.position_at(t(99.0)), Point2::new(10.0, 20.0));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn scripted_rejects_unsorted() {
        let _ = Scripted::new(vec![
            (t(5.0), Point2::new(0.0, 0.0)),
            (t(5.0), Point2::new(1.0, 0.0)),
        ]);
    }

    #[test]
    #[should_panic(expected = "needs keyframes")]
    fn scripted_rejects_empty() {
        let _ = Scripted::new(vec![]);
    }
}
