//! Clustered (community) waypoint mobility.
//!
//! Each node belongs to a *home community* — a Gaussian blob in the
//! playground. Most waypoints are drawn near home (`home_prob`), the
//! rest uniformly over the whole area (inter-community travel). This
//! produces the heterogeneous pairwise meeting rates real human-carried
//! DTNs show (same-community pairs meet often, cross-community pairs
//! rarely) and stresses the SDSRP assumption of a *single* exponential
//! intermeeting rate λ shared by all pairs — an instructive contrast to
//! [`crate::random_waypoint`] in the Fig. 3 harness.

use crate::model::{WaypointDecision, WaypointPlanner};
use dtn_core::geometry::{Point2, Rect};
use dtn_core::rng::{uniform_range, weighted_index};
use dtn_core::time::SimDuration;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Parameters for clustered-waypoint movement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusteredWaypointConfig {
    /// Playground rectangle.
    pub area_width: f64,
    /// Playground rectangle.
    pub area_height: f64,
    /// Number of communities.
    pub clusters: usize,
    /// Gaussian scatter of waypoints around the community centre, m.
    pub sigma: f64,
    /// Probability a waypoint is near home (vs uniform roaming).
    pub home_prob: f64,
    /// Minimum speed, m/s.
    pub min_speed: f64,
    /// Maximum speed, m/s.
    pub max_speed: f64,
    /// Maximum pause at a waypoint, seconds (uniform `[0, max_pause]`).
    pub max_pause: f64,
}

impl ClusteredWaypointConfig {
    /// A paper-playground default: 6 communities, 300 m blobs, 85% home
    /// affinity, pedestrian speeds.
    pub fn default_communities() -> Self {
        ClusteredWaypointConfig {
            area_width: 4500.0,
            area_height: 3400.0,
            clusters: 6,
            sigma: 300.0,
            home_prob: 0.85,
            min_speed: 2.0,
            max_speed: 2.0,
            max_pause: 60.0,
        }
    }

    fn validate(&self) {
        assert!(self.clusters > 0, "need at least one cluster");
        assert!(self.sigma > 0.0, "sigma must be positive");
        assert!(
            (0.0..=1.0).contains(&self.home_prob),
            "home_prob must be a probability"
        );
        assert!(
            self.min_speed > 0.0 && self.max_speed >= self.min_speed,
            "invalid speed range"
        );
        assert!(self.max_pause >= 0.0, "pause must be non-negative");
    }

    /// The playground rectangle.
    pub fn area(&self) -> Rect {
        Rect::from_size(self.area_width, self.area_height)
    }
}

/// The shared community layout (centres generated once per scenario).
#[derive(Debug, Clone)]
pub struct CommunityLayout {
    /// Community centres.
    pub centers: Vec<Point2>,
    area: Rect,
}

impl CommunityLayout {
    /// Generates `n` community centres uniformly in `area`.
    pub fn generate(area: Rect, n: usize, rng: &mut StdRng) -> Self {
        assert!(n > 0, "need at least one community");
        let centers = (0..n)
            .map(|_| {
                Point2::new(
                    uniform_range(rng, area.min.x, area.max.x),
                    uniform_range(rng, area.min.y, area.max.y),
                )
            })
            .collect();
        CommunityLayout { centers, area }
    }

    /// Assigns a home community for node `index` (round-robin, so
    /// communities stay balanced).
    pub fn home_of(&self, index: usize) -> usize {
        index % self.centers.len()
    }
}

/// The per-node clustered-waypoint planner.
#[derive(Debug, Clone)]
pub struct ClusteredWaypointPlanner {
    layout: Arc<CommunityLayout>,
    cfg: ClusteredWaypointConfig,
    home: usize,
}

impl ClusteredWaypointPlanner {
    /// Creates the planner for the node with the given home community.
    pub fn new(layout: Arc<CommunityLayout>, cfg: ClusteredWaypointConfig, home: usize) -> Self {
        cfg.validate();
        assert!(home < layout.centers.len(), "home community out of range");
        ClusteredWaypointPlanner { layout, cfg, home }
    }

    /// The node's home community index.
    pub fn home(&self) -> usize {
        self.home
    }

    fn std_normal(rng: &mut StdRng) -> f64 {
        let u1: f64 = 1.0 - rng.gen::<f64>();
        let u2: f64 = rng.gen();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    fn near(&self, center: Point2, rng: &mut StdRng) -> Point2 {
        let p = Point2::new(
            center.x + Self::std_normal(rng) * self.cfg.sigma,
            center.y + Self::std_normal(rng) * self.cfg.sigma,
        );
        self.layout.area.clamp(p)
    }
}

impl WaypointPlanner for ClusteredWaypointPlanner {
    fn initial_position(&mut self, rng: &mut StdRng) -> Point2 {
        self.near(self.layout.centers[self.home], rng)
    }

    fn next_decision(&mut self, _from: Point2, rng: &mut StdRng) -> WaypointDecision {
        let dest = if rng.gen::<f64>() < self.cfg.home_prob {
            self.near(self.layout.centers[self.home], rng)
        } else {
            // Roaming: visit a random community (weighted uniformly) or
            // anywhere — pick a random community centre vicinity so
            // roamers actually encounter other communities.
            let weights = vec![1.0; self.layout.centers.len()];
            let k = weighted_index(rng, &weights);
            self.near(self.layout.centers[k], rng)
        };
        WaypointDecision {
            dest,
            speed: uniform_range(rng, self.cfg.min_speed, self.cfg.max_speed),
            pause: SimDuration::from_secs(uniform_range(rng, 0.0, self.cfg.max_pause)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{LegMover, Mobility};
    use dtn_core::rng::{stream_rng, streams, substream_rng};
    use dtn_core::time::SimTime;

    fn layout(cfg: &ClusteredWaypointConfig) -> Arc<CommunityLayout> {
        let mut rng = stream_rng(11, streams::TOPOLOGY);
        Arc::new(CommunityLayout::generate(
            cfg.area(),
            cfg.clusters,
            &mut rng,
        ))
    }

    #[test]
    fn home_assignment_is_balanced() {
        let cfg = ClusteredWaypointConfig::default_communities();
        let l = layout(&cfg);
        let homes: Vec<usize> = (0..12).map(|i| l.home_of(i)).collect();
        for c in 0..6 {
            assert_eq!(homes.iter().filter(|&&h| h == c).count(), 2);
        }
    }

    #[test]
    fn stays_inside_area() {
        let cfg = ClusteredWaypointConfig::default_communities();
        let l = layout(&cfg);
        let mut m = LegMover::new(
            ClusteredWaypointPlanner::new(l, cfg, 2),
            substream_rng(3, streams::MOBILITY, 0),
        );
        for i in 0..1500 {
            let p = m.position_at(SimTime::from_secs(i as f64 * 11.0));
            assert!(cfg.area().contains(p));
        }
    }

    #[test]
    fn spends_most_time_near_home() {
        let cfg = ClusteredWaypointConfig::default_communities();
        let l = layout(&cfg);
        let home_center = l.centers[1];
        let mut m = LegMover::new(
            ClusteredWaypointPlanner::new(l.clone(), cfg, 1),
            substream_rng(4, streams::MOBILITY, 7),
        );
        let mut near_home = 0;
        let total = 600;
        for i in 0..total {
            let p = m.position_at(SimTime::from_secs(i as f64 * 60.0));
            if p.distance(home_center) < 4.0 * cfg.sigma {
                near_home += 1;
            }
        }
        let frac = near_home as f64 / total as f64;
        assert!(frac > 0.55, "only {frac:.2} of time near home");
    }

    #[test]
    fn same_community_pairs_meet_more() {
        // Sample two same-home nodes and two different-home nodes; the
        // same-home pair should be within 100 m far more often.
        let cfg = ClusteredWaypointConfig::default_communities();
        let l = layout(&cfg);
        let mk = |home: usize, sub: u64| {
            LegMover::new(
                ClusteredWaypointPlanner::new(l.clone(), cfg, home),
                substream_rng(5, streams::MOBILITY, sub),
            )
        };
        let mut a = mk(0, 0);
        let mut b = mk(0, 1);
        let mut c = mk(3, 2);
        let (mut same, mut diff) = (0, 0);
        for i in 0..4000 {
            let t = SimTime::from_secs(i as f64 * 30.0);
            let pa = a.position_at(t);
            if pa.distance(b.position_at(t)) < 100.0 {
                same += 1;
            }
            if pa.distance(c.position_at(t)) < 100.0 {
                diff += 1;
            }
        }
        assert!(
            same > diff * 2,
            "community structure too weak: same {same}, diff {diff}"
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_home_rejected() {
        let cfg = ClusteredWaypointConfig::default_communities();
        let l = layout(&cfg);
        let _ = ClusteredWaypointPlanner::new(l, cfg, 99);
    }
}
