//! Hotspot taxi mobility — the EPFL/CRAWDAD San-Francisco cab substitute.
//!
//! The paper's second evaluation scenario replays GPS tracks of 200 San
//! Francisco taxis. That dataset is not redistributable here, so this
//! module synthesises movement with the properties the paper's analysis
//! actually depends on:
//!
//! * **Spatial aggregation** — the paper explicitly calls out "an obvious
//!   aggregation phenomenon in the EPFL environment". Taxis concentrate
//!   around a few popular districts (airport, downtown, stations). We
//!   model a set of *hotspots* with Zipf-like popularity; each leg drives
//!   to a point near a popularity-sampled hotspot.
//! * **Heterogeneous, sparser contacts than RWP** — taxis meet far less
//!   uniformly than random-waypoint nodes; popularity weighting plus large
//!   city extent produces exactly that.
//! * **Approximately exponential intermeeting tails** (paper Fig. 3b) —
//!   verified empirically by the `fig3` harness against this model.
//!
//! The generated trajectories can be exported through
//! [`crate::trace`] so the "real trace" code path (file load + replay) is
//! exercised end-to-end.

use crate::model::{WaypointDecision, WaypointPlanner};
use dtn_core::geometry::{Point2, Rect};
use dtn_core::rng::{uniform_range, weighted_index};
use dtn_core::time::SimDuration;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// One city hotspot: a centre of attraction with a popularity weight and
/// a spatial spread.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Hotspot {
    /// Centre of the district.
    pub center: Point2,
    /// Relative popularity (need not be normalised).
    pub weight: f64,
    /// Standard deviation of the Gaussian scatter around the centre, m.
    pub sigma: f64,
}

/// The shared city layout: all taxis sample destinations from the same
/// hotspot set.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HotspotLayout {
    /// The city extent.
    pub area: Rect,
    /// The hotspot set (non-empty).
    pub hotspots: Vec<Hotspot>,
}

impl HotspotLayout {
    /// Generates a layout with `n` hotspots at uniformly random centres
    /// and Zipf popularity (`weight ∝ 1/rank`), spreads drawn from
    /// `[sigma_min, sigma_max]`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn generate(area: Rect, n: usize, sigma_range: (f64, f64), rng: &mut StdRng) -> Self {
        assert!(n > 0, "need at least one hotspot");
        let hotspots = (0..n)
            .map(|rank| Hotspot {
                center: Point2::new(
                    uniform_range(rng, area.min.x, area.max.x),
                    uniform_range(rng, area.min.y, area.max.y),
                ),
                weight: 1.0 / (rank as f64 + 1.0),
                sigma: uniform_range(rng, sigma_range.0, sigma_range.1),
            })
            .collect();
        HotspotLayout { area, hotspots }
    }

    fn weights(&self) -> Vec<f64> {
        self.hotspots.iter().map(|h| h.weight).collect()
    }
}

/// Parameters for taxi movement over a [`HotspotLayout`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HotspotTaxiConfig {
    /// Minimum driving speed, m/s.
    pub min_speed: f64,
    /// Maximum driving speed, m/s.
    pub max_speed: f64,
    /// Minimum pause at each stop (pick-up/drop-off), seconds.
    pub min_pause: f64,
    /// Maximum pause at each stop, seconds.
    pub max_pause: f64,
    /// Probability a leg goes to a uniformly random street point instead
    /// of a hotspot (off-hotspot fares); keeps the model ergodic.
    pub wander_prob: f64,
}

impl HotspotTaxiConfig {
    /// Defaults chosen to mimic urban taxi dynamics: 5-15 m/s driving,
    /// 30-300 s stops, 20% off-hotspot fares.
    pub fn default_taxi() -> Self {
        HotspotTaxiConfig {
            min_speed: 5.0,
            max_speed: 15.0,
            min_pause: 30.0,
            max_pause: 300.0,
            wander_prob: 0.2,
        }
    }

    fn validate(&self) {
        assert!(
            self.min_speed > 0.0 && self.max_speed >= self.min_speed,
            "invalid speed range"
        );
        assert!(
            self.min_pause >= 0.0 && self.max_pause >= self.min_pause,
            "invalid pause range"
        );
        assert!(
            (0.0..=1.0).contains(&self.wander_prob),
            "wander_prob must be a probability"
        );
    }
}

/// The taxi planner: drive to a popularity-sampled hotspot (with Gaussian
/// scatter), pause, repeat; occasionally take an off-hotspot fare.
#[derive(Debug, Clone)]
pub struct HotspotTaxiPlanner {
    layout: Arc<HotspotLayout>,
    weights: Vec<f64>,
    cfg: HotspotTaxiConfig,
}

impl HotspotTaxiPlanner {
    /// Creates a planner over a shared layout.
    pub fn new(layout: Arc<HotspotLayout>, cfg: HotspotTaxiConfig) -> Self {
        cfg.validate();
        assert!(!layout.hotspots.is_empty(), "layout has no hotspots");
        let weights = layout.weights();
        HotspotTaxiPlanner {
            layout,
            weights,
            cfg,
        }
    }

    /// Standard normal via Box–Muller (rand's `Normal` lives in the
    /// `rand_distr` crate, which we avoid to stay inside the allowed
    /// dependency set).
    fn std_normal(rng: &mut StdRng) -> f64 {
        let u1: f64 = 1.0 - rng.gen::<f64>(); // (0, 1]
        let u2: f64 = rng.gen();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    fn sample_near_hotspot(&self, rng: &mut StdRng) -> Point2 {
        let h = &self.layout.hotspots[weighted_index(rng, &self.weights)];
        let p = Point2::new(
            h.center.x + Self::std_normal(rng) * h.sigma,
            h.center.y + Self::std_normal(rng) * h.sigma,
        );
        self.layout.area.clamp(p)
    }

    fn sample_uniform(&self, rng: &mut StdRng) -> Point2 {
        Point2::new(
            uniform_range(rng, self.layout.area.min.x, self.layout.area.max.x),
            uniform_range(rng, self.layout.area.min.y, self.layout.area.max.y),
        )
    }
}

impl WaypointPlanner for HotspotTaxiPlanner {
    fn initial_position(&mut self, rng: &mut StdRng) -> Point2 {
        // Taxis start on shift near a hotspot.
        self.sample_near_hotspot(rng)
    }

    fn next_decision(&mut self, _from: Point2, rng: &mut StdRng) -> WaypointDecision {
        let dest = if rng.gen::<f64>() < self.cfg.wander_prob {
            self.sample_uniform(rng)
        } else {
            self.sample_near_hotspot(rng)
        };
        WaypointDecision {
            dest,
            speed: uniform_range(rng, self.cfg.min_speed, self.cfg.max_speed),
            pause: SimDuration::from_secs(uniform_range(
                rng,
                self.cfg.min_pause,
                self.cfg.max_pause,
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{LegMover, Mobility};
    use dtn_core::rng::{stream_rng, streams, substream_rng};
    use dtn_core::time::SimTime;

    fn layout() -> Arc<HotspotLayout> {
        let mut rng = stream_rng(99, streams::TOPOLOGY);
        Arc::new(HotspotLayout::generate(
            Rect::from_size(8000.0, 8000.0),
            10,
            (150.0, 400.0),
            &mut rng,
        ))
    }

    #[test]
    fn layout_generation() {
        let l = layout();
        assert_eq!(l.hotspots.len(), 10);
        for (i, h) in l.hotspots.iter().enumerate() {
            assert!(l.area.contains(h.center));
            assert!((h.weight - 1.0 / (i as f64 + 1.0)).abs() < 1e-12);
            assert!(h.sigma >= 150.0 && h.sigma <= 400.0);
        }
    }

    #[test]
    fn taxis_stay_in_city() {
        let l = layout();
        let mut m = LegMover::new(
            HotspotTaxiPlanner::new(l.clone(), HotspotTaxiConfig::default_taxi()),
            substream_rng(1, streams::MOBILITY, 0),
        );
        for i in 0..2000 {
            let p = m.position_at(SimTime::from_secs(i as f64 * 9.0));
            assert!(l.area.contains(p));
        }
    }

    #[test]
    fn movement_aggregates_near_hotspots() {
        // Sample long-run positions of many taxis; the fraction within
        // 3 sigma of some hotspot should far exceed the uniform baseline.
        let l = layout();
        let mut near = 0usize;
        let mut total = 0usize;
        for node in 0..30u64 {
            let mut m = LegMover::new(
                HotspotTaxiPlanner::new(l.clone(), HotspotTaxiConfig::default_taxi()),
                substream_rng(7, streams::MOBILITY, node),
            );
            for i in 0..200 {
                let p = m.position_at(SimTime::from_secs(i as f64 * 60.0));
                total += 1;
                if l.hotspots
                    .iter()
                    .any(|h| p.distance(h.center) < 3.0 * h.sigma)
                {
                    near += 1;
                }
            }
        }
        let frac = near as f64 / total as f64;
        // Hotspot discs cover well under half the 64 km^2 city; taxis
        // should still spend most of their time near one.
        assert!(frac > 0.5, "only {frac:.2} of samples near hotspots");
    }

    #[test]
    fn popular_hotspots_attract_more_visits() {
        let l = layout();
        let planner = HotspotTaxiPlanner::new(l.clone(), HotspotTaxiConfig::default_taxi());
        let mut rng = stream_rng(3, streams::MOBILITY);
        let mut counts = vec![0usize; l.hotspots.len()];
        for _ in 0..20_000 {
            let p = planner.sample_near_hotspot(&mut rng);
            // Attribute the sample to the nearest hotspot.
            let (best, _) = l
                .hotspots
                .iter()
                .enumerate()
                .map(|(i, h)| (i, p.distance(h.center)))
                .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                .unwrap();
            counts[best] += 1;
        }
        // Rank 0 has weight 1.0, rank 9 weight 0.1: expect a clear gap.
        assert!(
            counts[0] > counts[9] * 2,
            "rank0={} rank9={}",
            counts[0],
            counts[9]
        );
    }

    #[test]
    #[should_panic(expected = "wander_prob")]
    fn rejects_bad_probability() {
        let mut cfg = HotspotTaxiConfig::default_taxi();
        cfg.wander_prob = 1.5;
        let _ = HotspotTaxiPlanner::new(layout(), cfg);
    }

    #[test]
    fn std_normal_moments() {
        let mut rng = stream_rng(5, streams::BENCH);
        let n = 50_000;
        let samples: Vec<f64> = (0..n)
            .map(|_| HotspotTaxiPlanner::std_normal(&mut rng))
            .collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}
