//! # dtn-mobility
//!
//! Node movement models for the SDSRP DTN simulator.
//!
//! The paper evaluates under two mobility regimes:
//!
//! 1. **Random waypoint** in a 4500 m x 3400 m playground at 2 m/s
//!    (Table II) — implemented exactly in
//!    [`RandomWaypointPlanner`](random_waypoint::RandomWaypointPlanner).
//! 2. **The EPFL/CRAWDAD San-Francisco taxi trace** (200 cabs) — the real
//!    GPS data is not redistributable here, so
//!    [`HotspotTaxiPlanner`](hotspot::HotspotTaxiPlanner) synthesises
//!    taxi-like movement (weighted city hotspots, taxi speeds, pick-up
//!    pauses) that reproduces the properties the paper relies on: heavy
//!    spatial aggregation, heterogeneous contact rates and approximately
//!    exponential intermeeting tails (verified by the Fig. 3 harness).
//!    Real traces can still be replayed byte-for-byte through
//!    [`TraceMobility`](trace::TraceMobility).
//!
//! All waypoint-style models share one integrator,
//! [`model::LegMover`], which turns a
//! [`model::WaypointPlanner`]'s decisions
//! ("go there, at this speed, then pause this long") into an exact
//! piecewise-linear trajectory — positions are computed analytically, not
//! by Euler stepping, so querying at any time is exact regardless of the
//! simulator tick.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod clustered;
pub mod config;
pub mod hotspot;
pub mod model;
pub mod random_direction;
pub mod random_walk;
pub mod random_waypoint;
pub mod stationary;
pub mod trace;

pub use config::{build_fleet, MobilityConfig};
pub use model::{LegMover, Mobility, WaypointDecision, WaypointPlanner};
