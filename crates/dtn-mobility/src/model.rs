//! The mobility abstraction: planners, legs and the analytic integrator.

use dtn_core::geometry::Point2;
use dtn_core::time::{SimDuration, SimTime};
use rand::rngs::StdRng;

/// Any source of a node trajectory.
///
/// `position_at` must be called with **non-decreasing** timestamps; this
/// lets implementations advance internal state lazily instead of storing
/// an entire trajectory.
pub trait Mobility: Send {
    /// Position of the node at simulation time `t`.
    fn position_at(&mut self, t: SimTime) -> Point2;
}

/// One decision by a [`WaypointPlanner`]: travel to `dest` at `speed`,
/// then stay put for `pause`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WaypointDecision {
    /// Where to go next.
    pub dest: Point2,
    /// Travel speed in m/s (must be > 0 unless `dest == from`).
    pub speed: f64,
    /// Pause duration after arriving.
    pub pause: SimDuration,
}

/// Strategy deciding *where to go next*; the shared [`LegMover`] turns the
/// decisions into an exact piecewise-linear trajectory.
pub trait WaypointPlanner: Send {
    /// The node's position at `t = 0`.
    fn initial_position(&mut self, rng: &mut StdRng) -> Point2;

    /// The next movement decision, departing from `from`.
    fn next_decision(&mut self, from: Point2, rng: &mut StdRng) -> WaypointDecision;
}

/// One straight-line movement leg followed by a pause.
#[derive(Debug, Clone, Copy)]
struct Leg {
    from: Point2,
    to: Point2,
    depart: SimTime,
    arrive: SimTime,
    /// End of the post-arrival pause == departure time of the next leg.
    pause_end: SimTime,
}

impl Leg {
    fn position_at(&self, t: SimTime) -> Point2 {
        if t <= self.depart {
            self.from
        } else if t >= self.arrive {
            self.to
        } else {
            let f = (t - self.depart).as_secs() / (self.arrive - self.depart).as_secs();
            self.from.lerp(self.to, f)
        }
    }
}

/// Drives a [`WaypointPlanner`] into a [`Mobility`] trajectory.
///
/// The mover owns the node's RNG so every node's movement is an
/// independent reproducible stream.
pub struct LegMover<P: WaypointPlanner> {
    planner: P,
    rng: StdRng,
    leg: Leg,
}

impl<P: WaypointPlanner> LegMover<P> {
    /// Builds the mover and materialises the first leg.
    pub fn new(mut planner: P, mut rng: StdRng) -> Self {
        let start = planner.initial_position(&mut rng);
        let leg = Self::make_leg(&mut planner, &mut rng, start, SimTime::ZERO);
        LegMover { planner, rng, leg }
    }

    fn make_leg(planner: &mut P, rng: &mut StdRng, from: Point2, depart: SimTime) -> Leg {
        let d = planner.next_decision(from, rng);
        let dist = from.distance(d.dest);
        let travel = if dist == 0.0 {
            SimDuration::ZERO
        } else {
            assert!(
                d.speed > 0.0,
                "planner returned non-positive speed {} for a non-zero leg",
                d.speed
            );
            SimDuration::from_secs(dist / d.speed)
        };
        let arrive = depart + travel;
        let pause = d.pause.clamp_non_negative();
        Leg {
            from,
            to: d.dest,
            depart,
            arrive,
            pause_end: arrive + pause,
        }
    }

    /// Access the planner (e.g. for inspecting hotspot layouts in tests).
    pub fn planner(&self) -> &P {
        &self.planner
    }
}

impl<P: WaypointPlanner> Mobility for LegMover<P> {
    fn position_at(&mut self, t: SimTime) -> Point2 {
        // Advance through however many legs `t` has passed. Guard against
        // planners that produce zero-duration legs forever by bounding
        // the number of zero-time advances per query.
        let mut zero_steps = 0;
        while t > self.leg.pause_end {
            let prev_end = self.leg.pause_end;
            self.leg = Self::make_leg(&mut self.planner, &mut self.rng, self.leg.to, prev_end);
            if self.leg.pause_end == prev_end {
                zero_steps += 1;
                assert!(
                    zero_steps < 10_000,
                    "planner produced 10000 zero-duration legs in a row"
                );
            } else {
                zero_steps = 0;
            }
        }
        self.leg.position_at(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtn_core::rng::{stream_rng, streams};

    /// A planner that bounces between two fixed points at 1 m/s with a
    /// 2 s pause — lets us verify the integrator analytically.
    struct PingPong;

    impl WaypointPlanner for PingPong {
        fn initial_position(&mut self, _rng: &mut StdRng) -> Point2 {
            Point2::new(0.0, 0.0)
        }
        fn next_decision(&mut self, from: Point2, _rng: &mut StdRng) -> WaypointDecision {
            let dest = if from.x < 5.0 {
                Point2::new(10.0, 0.0)
            } else {
                Point2::new(0.0, 0.0)
            };
            WaypointDecision {
                dest,
                speed: 1.0,
                pause: SimDuration::from_secs(2.0),
            }
        }
    }

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn interpolates_exactly() {
        let mut m = LegMover::new(PingPong, stream_rng(1, streams::MOBILITY));
        // Leg 1: 0 -> 10 over t in [0, 10], pause until 12.
        assert_eq!(m.position_at(t(0.0)), Point2::new(0.0, 0.0));
        assert_eq!(m.position_at(t(2.5)), Point2::new(2.5, 0.0));
        assert_eq!(m.position_at(t(10.0)), Point2::new(10.0, 0.0));
        // Pause.
        assert_eq!(m.position_at(t(11.5)), Point2::new(10.0, 0.0));
        // Leg 2 departs at 12: back towards 0.
        assert_eq!(m.position_at(t(13.0)), Point2::new(9.0, 0.0));
        assert_eq!(m.position_at(t(22.0)), Point2::new(0.0, 0.0));
    }

    #[test]
    fn skips_many_legs_in_one_query() {
        let mut m = LegMover::new(PingPong, stream_rng(1, streams::MOBILITY));
        // Each round trip is 24 s. Jump straight to t = 100 s:
        // 100 = 4 * 24 + 4 -> mid-leg of the 5th leg (0 -> 10 at depart 96).
        let p = m.position_at(t(100.0));
        assert_eq!(p, Point2::new(4.0, 0.0));
    }

    #[test]
    fn queries_at_same_time_are_stable() {
        let mut m = LegMover::new(PingPong, stream_rng(1, streams::MOBILITY));
        let a = m.position_at(t(7.0));
        let b = m.position_at(t(7.0));
        assert_eq!(a, b);
    }

    /// A planner that never moves (dest == from, zero pause except first).
    struct Frozen;
    impl WaypointPlanner for Frozen {
        fn initial_position(&mut self, _rng: &mut StdRng) -> Point2 {
            Point2::new(3.0, 4.0)
        }
        fn next_decision(&mut self, from: Point2, _rng: &mut StdRng) -> WaypointDecision {
            WaypointDecision {
                dest: from,
                speed: 0.0, // allowed because the leg has zero length
                pause: SimDuration::from_secs(60.0),
            }
        }
    }

    #[test]
    fn zero_length_legs_are_fine() {
        let mut m = LegMover::new(Frozen, stream_rng(2, streams::MOBILITY));
        assert_eq!(m.position_at(t(0.0)), Point2::new(3.0, 4.0));
        assert_eq!(m.position_at(t(500.0)), Point2::new(3.0, 4.0));
    }
}
