//! Declarative mobility configuration and fleet construction.
//!
//! Scenario files describe mobility with [`MobilityConfig`]; the
//! simulator turns it into one [`Mobility`] instance per node with
//! [`build_fleet`]. Every node receives an independent RNG substream so
//! fleets are reproducible and order-independent.

use crate::clustered::{ClusteredWaypointConfig, ClusteredWaypointPlanner, CommunityLayout};
use crate::hotspot::{HotspotLayout, HotspotTaxiConfig, HotspotTaxiPlanner};
use crate::model::{LegMover, Mobility};
use crate::random_direction::{RandomDirectionConfig, RandomDirectionPlanner};
use crate::random_walk::{RandomWalkConfig, RandomWalkPlanner};
use crate::random_waypoint::{RandomWaypointConfig, RandomWaypointPlanner};
use crate::stationary::Stationary;
use crate::trace::MobilityTrace;
use dtn_core::geometry::{Point2, Rect};
use dtn_core::rng::{stream_rng, streams, substream_rng};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Which mobility model a scenario uses.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MobilityConfig {
    /// Random waypoint (paper Table II).
    RandomWaypoint(RandomWaypointConfig),
    /// Random walk.
    RandomWalk(RandomWalkConfig),
    /// Random direction.
    RandomDirection(RandomDirectionConfig),
    /// Hotspot taxi — the EPFL trace substitute (paper Table III).
    HotspotTaxi {
        /// City extent.
        area_width: f64,
        /// City extent.
        area_height: f64,
        /// Number of hotspots.
        hotspots: usize,
        /// Hotspot scatter range `(sigma_min, sigma_max)` in metres.
        sigma_range: (f64, f64),
        /// Taxi behaviour parameters.
        taxi: HotspotTaxiConfig,
    },
    /// Community-based waypoint movement (extension): nodes favour a
    /// home cluster, producing heterogeneous pairwise meeting rates.
    ClusteredWaypoint(ClusteredWaypointConfig),
    /// All nodes pinned at explicit positions (tests/infrastructure).
    Stationary {
        /// One `(x, y)` per node.
        positions: Vec<(f64, f64)>,
    },
    /// Replay a trace from an inline text body (the file-based path uses
    /// [`MobilityTrace::load`] and this variant).
    TraceText {
        /// The trace in the `dtn-mobility` text format.
        body: String,
    },
}

impl MobilityConfig {
    /// The paper's random-waypoint scenario.
    pub fn paper_random_waypoint() -> Self {
        MobilityConfig::RandomWaypoint(RandomWaypointConfig::paper())
    }

    /// The EPFL-substitute taxi scenario: an 8 km x 8 km city with 12
    /// hotspots.
    pub fn paper_taxi() -> Self {
        MobilityConfig::HotspotTaxi {
            area_width: 8000.0,
            area_height: 8000.0,
            hotspots: 12,
            sigma_range: (150.0, 400.0),
            taxi: HotspotTaxiConfig::default_taxi(),
        }
    }

    /// The playground rectangle the model moves in (used for contact-grid
    /// sizing). Trace-based configs derive it from the sample bounding
    /// box.
    pub fn area(&self) -> Rect {
        match self {
            MobilityConfig::RandomWaypoint(c) => c.area,
            MobilityConfig::RandomWalk(c) => c.area,
            MobilityConfig::RandomDirection(c) => c.area,
            MobilityConfig::HotspotTaxi {
                area_width,
                area_height,
                ..
            } => Rect::from_size(*area_width, *area_height),
            MobilityConfig::ClusteredWaypoint(c) => c.area(),
            MobilityConfig::Stationary { positions } => {
                bounding_box(positions.iter().map(|&(x, y)| Point2::new(x, y)))
            }
            MobilityConfig::TraceText { body } => {
                let trace = MobilityTrace::parse(body.as_bytes()).expect("invalid inline trace");
                bounding_box((0..trace.node_count()).flat_map(|n| {
                    trace
                        .node_samples(n)
                        .iter()
                        .map(|&(_, p)| p)
                        .collect::<Vec<_>>()
                }))
            }
        }
    }
}

/// Smallest rectangle containing all points, padded so it is never
/// degenerate.
fn bounding_box(points: impl Iterator<Item = Point2>) -> Rect {
    let mut min = Point2::new(f64::INFINITY, f64::INFINITY);
    let mut max = Point2::new(f64::NEG_INFINITY, f64::NEG_INFINITY);
    let mut any = false;
    for p in points {
        any = true;
        min.x = min.x.min(p.x);
        min.y = min.y.min(p.y);
        max.x = max.x.max(p.x);
        max.y = max.y.max(p.y);
    }
    if !any {
        return Rect::from_size(1.0, 1.0);
    }
    // Pad degenerate extents.
    let pad = 1.0;
    Rect::new(
        Point2::new(min.x - pad, min.y - pad),
        Point2::new(max.x + pad, max.y + pad),
    )
}

/// Builds one mobility instance per node.
///
/// `master_seed` drives both the per-node movement streams and (for
/// hotspot taxi) the shared city layout, so a `(config, seed)` pair fully
/// determines every trajectory.
///
/// # Panics
/// Panics if a `Stationary`/`TraceText` config provides data for fewer
/// nodes than requested.
pub fn build_fleet(
    config: &MobilityConfig,
    n_nodes: usize,
    master_seed: u64,
) -> Vec<Box<dyn Mobility>> {
    match config {
        MobilityConfig::RandomWaypoint(c) => (0..n_nodes)
            .map(|i| {
                Box::new(LegMover::new(
                    RandomWaypointPlanner::new(*c),
                    substream_rng(master_seed, streams::MOBILITY, i as u64),
                )) as Box<dyn Mobility>
            })
            .collect(),
        MobilityConfig::RandomWalk(c) => (0..n_nodes)
            .map(|i| {
                Box::new(LegMover::new(
                    RandomWalkPlanner::new(*c),
                    substream_rng(master_seed, streams::MOBILITY, i as u64),
                )) as Box<dyn Mobility>
            })
            .collect(),
        MobilityConfig::RandomDirection(c) => (0..n_nodes)
            .map(|i| {
                Box::new(LegMover::new(
                    RandomDirectionPlanner::new(*c),
                    substream_rng(master_seed, streams::MOBILITY, i as u64),
                )) as Box<dyn Mobility>
            })
            .collect(),
        MobilityConfig::HotspotTaxi {
            area_width,
            area_height,
            hotspots,
            sigma_range,
            taxi,
        } => {
            let mut layout_rng = stream_rng(master_seed, streams::TOPOLOGY);
            let layout = Arc::new(HotspotLayout::generate(
                Rect::from_size(*area_width, *area_height),
                *hotspots,
                *sigma_range,
                &mut layout_rng,
            ));
            (0..n_nodes)
                .map(|i| {
                    Box::new(LegMover::new(
                        HotspotTaxiPlanner::new(layout.clone(), *taxi),
                        substream_rng(master_seed, streams::MOBILITY, i as u64),
                    )) as Box<dyn Mobility>
                })
                .collect()
        }
        MobilityConfig::ClusteredWaypoint(c) => {
            let mut layout_rng = stream_rng(master_seed, streams::TOPOLOGY);
            let layout = Arc::new(CommunityLayout::generate(
                c.area(),
                c.clusters,
                &mut layout_rng,
            ));
            (0..n_nodes)
                .map(|i| {
                    Box::new(LegMover::new(
                        ClusteredWaypointPlanner::new(layout.clone(), *c, layout.home_of(i)),
                        substream_rng(master_seed, streams::MOBILITY, i as u64),
                    )) as Box<dyn Mobility>
                })
                .collect()
        }
        MobilityConfig::Stationary { positions } => {
            assert!(
                positions.len() >= n_nodes,
                "stationary config has {} positions for {} nodes",
                positions.len(),
                n_nodes
            );
            positions[..n_nodes]
                .iter()
                .map(|&(x, y)| Box::new(Stationary::new(Point2::new(x, y))) as Box<dyn Mobility>)
                .collect()
        }
        MobilityConfig::TraceText { body } => {
            let trace = MobilityTrace::parse(body.as_bytes()).expect("invalid inline trace");
            assert!(
                trace.node_count() >= n_nodes,
                "trace has {} nodes, scenario wants {}",
                trace.node_count(),
                n_nodes
            );
            trace
                .replay()
                .into_iter()
                .take(n_nodes)
                .map(|m| Box::new(m) as Box<dyn Mobility>)
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtn_core::time::SimTime;

    #[test]
    fn builds_each_kind() {
        let n = 4;
        let seed = 1;
        for cfg in [
            MobilityConfig::paper_random_waypoint(),
            MobilityConfig::RandomWalk(RandomWalkConfig::paper_area()),
            MobilityConfig::RandomDirection(RandomDirectionConfig::paper_area()),
            MobilityConfig::paper_taxi(),
            MobilityConfig::ClusteredWaypoint(ClusteredWaypointConfig::default_communities()),
        ] {
            let mut fleet = build_fleet(&cfg, n, seed);
            assert_eq!(fleet.len(), n);
            let area = cfg.area();
            for m in &mut fleet {
                assert!(area.contains(m.position_at(SimTime::from_secs(123.0))));
            }
        }
    }

    #[test]
    fn stationary_fleet() {
        let cfg = MobilityConfig::Stationary {
            positions: vec![(0.0, 0.0), (5.0, 5.0)],
        };
        let mut fleet = build_fleet(&cfg, 2, 0);
        assert_eq!(fleet[1].position_at(SimTime::ZERO), Point2::new(5.0, 5.0));
    }

    #[test]
    #[should_panic(expected = "positions for")]
    fn stationary_too_few_positions() {
        let cfg = MobilityConfig::Stationary {
            positions: vec![(0.0, 0.0)],
        };
        let _ = build_fleet(&cfg, 2, 0);
    }

    #[test]
    fn trace_text_fleet() {
        let body = "0 0 1 1\n0 10 2 2\n1 0 3 3\n".to_string();
        let cfg = MobilityConfig::TraceText { body };
        let mut fleet = build_fleet(&cfg, 2, 0);
        assert_eq!(
            fleet[0].position_at(SimTime::from_secs(5.0)),
            Point2::new(1.5, 1.5)
        );
        assert_eq!(fleet[1].position_at(SimTime::ZERO), Point2::new(3.0, 3.0));
        let area = cfg.area();
        assert!(area.contains(Point2::new(2.0, 2.0)));
    }

    #[test]
    fn same_seed_same_fleet() {
        let cfg = MobilityConfig::paper_taxi();
        let mut a = build_fleet(&cfg, 3, 77);
        let mut b = build_fleet(&cfg, 3, 77);
        for t in [0.0, 100.0, 5000.0] {
            for i in 0..3 {
                assert_eq!(
                    a[i].position_at(SimTime::from_secs(t)),
                    b[i].position_at(SimTime::from_secs(t))
                );
            }
        }
    }

    #[test]
    fn different_seed_different_layout() {
        let cfg = MobilityConfig::paper_taxi();
        let mut a = build_fleet(&cfg, 1, 1);
        let mut b = build_fleet(&cfg, 1, 2);
        assert_ne!(
            a[0].position_at(SimTime::ZERO),
            b[0].position_at(SimTime::ZERO)
        );
    }

    #[test]
    fn serde_roundtrip() {
        let cfg = MobilityConfig::paper_taxi();
        let json = serde_json::to_string(&cfg).unwrap();
        let back: MobilityConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(cfg, back);
    }
}
