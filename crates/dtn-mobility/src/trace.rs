//! Mobility traces: record, serialise, load and replay.
//!
//! This is the code path a *real* CRAWDAD conversion would use: a plain
//! text format of timestamped waypoints per node, loaded into
//! [`MobilityTrace`] and replayed through [`TraceMobility`] with linear
//! interpolation between samples. Our EPFL substitute writes the same
//! format, so swapping in genuine GPS data is a pure data change.
//!
//! ## Format
//!
//! One sample per line, whitespace-separated:
//!
//! ```text
//! # comment lines and blanks are ignored
//! <node_id> <time_secs> <x_m> <y_m>
//! ```
//!
//! Samples may arrive in any order; they are sorted per node on load.

use crate::model::Mobility;
use dtn_core::geometry::Point2;
use dtn_core::time::SimTime;
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Read};
use std::path::Path;

/// An in-memory mobility trace: per-node timestamped waypoints.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MobilityTrace {
    /// `samples[node][k] = (time, position)`, sorted by time per node.
    samples: Vec<Vec<(SimTime, Point2)>>,
}

/// Errors raised while parsing a trace.
#[derive(Debug, PartialEq)]
pub enum TraceError {
    /// A line did not have exactly four numeric fields.
    Malformed {
        /// Source file, when parsing came through [`MobilityTrace::load`].
        /// `None` for in-memory readers.
        path: Option<String>,
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        reason: String,
    },
    /// A node has duplicate timestamps (ambiguous position).
    DuplicateTimestamp {
        /// The offending node.
        node: usize,
        /// The duplicated time, seconds.
        time: f64,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Malformed { path, line, reason } => match path {
                Some(p) => write!(f, "trace {p}:{line}: {reason}"),
                None => write!(f, "trace line {line}: {reason}"),
            },
            TraceError::DuplicateTimestamp { node, time } => {
                write!(f, "node {node} has duplicate timestamp {time}")
            }
        }
    }
}

impl std::error::Error for TraceError {}

impl TraceError {
    /// Attaches a source-file path to a [`TraceError::Malformed`] so the
    /// message names the offending file (`trace PATH:LINE: reason`).
    /// Other variants pass through unchanged.
    fn with_path(self, p: &Path) -> TraceError {
        match self {
            TraceError::Malformed { line, reason, .. } => TraceError::Malformed {
                path: Some(p.display().to_string()),
                line,
                reason,
            },
            other => other,
        }
    }
}

impl MobilityTrace {
    /// An empty trace with `n_nodes` nodes.
    pub fn with_nodes(n_nodes: usize) -> Self {
        MobilityTrace {
            samples: vec![Vec::new(); n_nodes],
        }
    }

    /// Appends a sample (kept unsorted until [`finish`](Self::finish) or
    /// load-time sorting).
    pub fn push(&mut self, node: usize, t: SimTime, p: Point2) {
        if node >= self.samples.len() {
            self.samples.resize(node + 1, Vec::new());
        }
        self.samples[node].push((t, p));
    }

    /// Sorts samples per node and validates there are no duplicate
    /// timestamps.
    pub fn finish(mut self) -> Result<Self, TraceError> {
        for (node, s) in self.samples.iter_mut().enumerate() {
            s.sort_by_key(|&(t, _)| t);
            for w in s.windows(2) {
                if w[0].0 == w[1].0 {
                    return Err(TraceError::DuplicateTimestamp {
                        node,
                        time: w[0].0.as_secs(),
                    });
                }
            }
        }
        Ok(self)
    }

    /// Number of nodes (including nodes with zero samples).
    pub fn node_count(&self) -> usize {
        self.samples.len()
    }

    /// Samples of one node.
    pub fn node_samples(&self, node: usize) -> &[(SimTime, Point2)] {
        &self.samples[node]
    }

    /// Total samples across all nodes.
    pub fn sample_count(&self) -> usize {
        self.samples.iter().map(Vec::len).sum()
    }

    /// Parses the text format (see module docs).
    pub fn parse<R: Read>(reader: R) -> Result<Self, TraceError> {
        let mut trace = MobilityTrace::default();
        let buf = BufReader::new(reader);
        for (lineno, line) in buf.lines().enumerate() {
            let line = line.map_err(|e| TraceError::Malformed {
                path: None,
                line: lineno + 1,
                reason: format!("io error: {e}"),
            })?;
            let text = line.trim();
            if text.is_empty() || text.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = text.split_whitespace().collect();
            if fields.len() != 4 {
                return Err(TraceError::Malformed {
                    path: None,
                    line: lineno + 1,
                    reason: format!("expected 4 fields, got {}", fields.len()),
                });
            }
            let parse_f64 = |s: &str, what: &str| -> Result<f64, TraceError> {
                s.parse::<f64>().map_err(|_| TraceError::Malformed {
                    path: None,
                    line: lineno + 1,
                    reason: format!("bad {what}: {s:?}"),
                })
            };
            let node = fields[0]
                .parse::<usize>()
                .map_err(|_| TraceError::Malformed {
                    path: None,
                    line: lineno + 1,
                    reason: format!("bad node id: {:?}", fields[0]),
                })?;
            let t = parse_f64(fields[1], "time")?;
            if t < 0.0 || !t.is_finite() {
                return Err(TraceError::Malformed {
                    path: None,
                    line: lineno + 1,
                    reason: format!("time must be finite and non-negative, got {t}"),
                });
            }
            let x = parse_f64(fields[2], "x")?;
            let y = parse_f64(fields[3], "y")?;
            trace.push(node, SimTime::from_secs(t), Point2::new(x, y));
        }
        trace.finish()
    }

    /// Loads from a file path. Parse errors are annotated with the path
    /// so the message reads `trace PATH:LINE: reason`.
    pub fn load(path: &Path) -> Result<Self, Box<dyn std::error::Error>> {
        let file = std::fs::File::open(path)?;
        Ok(Self::parse(file).map_err(|e| e.with_path(path))?)
    }

    /// Serialises to the text format.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str("# node time_s x_m y_m\n");
        for (node, samples) in self.samples.iter().enumerate() {
            for &(t, p) in samples {
                let _ = writeln!(out, "{} {} {} {}", node, t.as_secs(), p.x, p.y);
            }
        }
        out
    }

    /// Writes the text format to a file.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_text())
    }

    /// Records a trace by sampling `models` every `step` seconds over
    /// `[0, duration]` (inclusive of both ends).
    pub fn record(models: &mut [Box<dyn Mobility>], duration: SimTime, step: f64) -> MobilityTrace {
        assert!(step > 0.0, "sampling step must be positive");
        let mut trace = MobilityTrace::with_nodes(models.len());
        let steps = (duration.as_secs() / step).floor() as u64;
        for k in 0..=steps {
            let t = SimTime::from_secs(k as f64 * step);
            for (node, m) in models.iter_mut().enumerate() {
                trace.push(node, t, m.position_at(t));
            }
        }
        trace
    }

    /// Builds one replay handle per node. Nodes without samples sit at
    /// the origin.
    pub fn replay(&self) -> Vec<TraceMobility> {
        (0..self.node_count())
            .map(|n| TraceMobility::new(self.samples[n].clone()))
            .collect()
    }
}

/// Replays one node's waypoints with linear interpolation; the node holds
/// its first/last sampled position outside the sampled window (taxis that
/// log off stay parked — same convention as ONE's `ExternalMovement`).
#[derive(Debug, Clone)]
pub struct TraceMobility {
    samples: Vec<(SimTime, Point2)>,
    /// Cursor remembering the last bracketing index (queries are
    /// monotone, so replay is O(1) amortised).
    cursor: usize,
}

impl TraceMobility {
    /// Builds a replay from samples.
    ///
    /// Unlike the file-load path (which routes through
    /// [`MobilityTrace::finish`] and *rejects* duplicate timestamps),
    /// in-memory construction accepts whatever the caller assembled:
    /// the samples are sorted and adjacent duplicate timestamps are
    /// collapsed (last sample at a timestamp wins), so every
    /// construction path yields a well-formed, strictly-increasing
    /// timeline and [`position_at`](Mobility::position_at) can never
    /// divide by a zero-width segment.
    pub fn new(mut samples: Vec<(SimTime, Point2)>) -> Self {
        samples.sort_by_key(|&(t, _)| t);
        samples.dedup_by(|next, prev| {
            if next.0 == prev.0 {
                // `dedup_by` keeps `prev` and discards `next`; the later
                // push should win, so copy its position over first.
                prev.1 = next.1;
                true
            } else {
                false
            }
        });
        TraceMobility { samples, cursor: 0 }
    }
}

impl Mobility for TraceMobility {
    fn position_at(&mut self, t: SimTime) -> Point2 {
        if self.samples.is_empty() {
            return Point2::default();
        }
        if t <= self.samples[0].0 {
            return self.samples[0].1;
        }
        let last = self.samples.len() - 1;
        if t >= self.samples[last].0 {
            return self.samples[last].1;
        }
        // Advance the cursor to the bracketing segment.
        while self.samples[self.cursor + 1].0 < t {
            self.cursor += 1;
        }
        // Queries are documented monotone, but be tolerant of a rewind.
        while self.cursor > 0 && self.samples[self.cursor].0 > t {
            self.cursor -= 1;
        }
        let (t0, p0) = self.samples[self.cursor];
        let (t1, p1) = self.samples[self.cursor + 1];
        // Belt and braces: the constructor collapses duplicate
        // timestamps, but a zero-width segment must still never produce
        // a NaN lerp factor (NaN positions silently poison the spatial
        // grid and every contact decision after it).
        let width = (t1 - t0).as_secs();
        if width <= 0.0 {
            return p0;
        }
        let f = (t - t0).as_secs() / width;
        p0.lerp(p1, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random_waypoint::{RandomWaypointConfig, RandomWaypointPlanner};
    use crate::LegMover;
    use dtn_core::rng::{streams, substream_rng};

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn roundtrip_text() {
        let mut trace = MobilityTrace::with_nodes(2);
        trace.push(0, t(0.0), Point2::new(1.0, 2.0));
        trace.push(0, t(10.0), Point2::new(3.0, 4.0));
        trace.push(1, t(5.0), Point2::new(-1.5, 0.25));
        let trace = trace.finish().unwrap();
        let text = trace.to_text();
        let parsed = MobilityTrace::parse(text.as_bytes()).unwrap();
        assert_eq!(parsed, trace);
    }

    #[test]
    fn duplicate_timestamps_in_memory_do_not_produce_nan() {
        // Regression: the duplicate-timestamp guard only ran on the
        // file-load path; `TraceMobility::new` accepted equal adjacent
        // timestamps and the lerp divided by (t1 - t0) == 0, yielding
        // NaN positions that silently poisoned the spatial grid.
        let mut m = TraceMobility::new(vec![
            (t(0.0), Point2::new(0.0, 0.0)),
            (t(10.0), Point2::new(100.0, 0.0)),
            (t(10.0), Point2::new(200.0, 0.0)),
            (t(20.0), Point2::new(300.0, 0.0)),
        ]);
        for s in 0..=40 {
            let p = m.position_at(t(s as f64 * 0.5));
            assert!(
                p.x.is_finite() && p.y.is_finite(),
                "NaN/inf position at t={}: ({}, {})",
                s as f64 * 0.5,
                p.x,
                p.y
            );
        }
        // The later push at the duplicated timestamp wins.
        assert_eq!(m.position_at(t(10.0)).x, 200.0);
        // Interpolation continues cleanly past the collapsed sample.
        assert_eq!(m.position_at(t(15.0)).x, 250.0);
    }

    #[test]
    fn unsorted_in_memory_samples_are_sorted_on_construction() {
        let mut m = TraceMobility::new(vec![
            (t(20.0), Point2::new(20.0, 0.0)),
            (t(0.0), Point2::new(0.0, 0.0)),
            (t(10.0), Point2::new(10.0, 0.0)),
        ]);
        assert_eq!(m.position_at(t(5.0)).x, 5.0);
        assert_eq!(m.position_at(t(15.0)).x, 15.0);
    }

    #[test]
    fn all_duplicate_timestamps_collapse_to_one_sample() {
        let mut m = TraceMobility::new(vec![
            (t(5.0), Point2::new(1.0, 1.0)),
            (t(5.0), Point2::new(2.0, 2.0)),
            (t(5.0), Point2::new(3.0, 3.0)),
        ]);
        for s in [0.0, 5.0, 50.0] {
            let p = m.position_at(t(s));
            assert_eq!((p.x, p.y), (3.0, 3.0));
        }
    }

    #[test]
    fn parse_skips_comments_and_blanks() {
        let text = "# header\n\n0 0 1 2\n  # another\n0 10 3 4\n";
        let trace = MobilityTrace::parse(text.as_bytes()).unwrap();
        assert_eq!(trace.sample_count(), 2);
    }

    #[test]
    fn parse_rejects_malformed() {
        let err = MobilityTrace::parse("0 1 2".as_bytes()).unwrap_err();
        assert!(matches!(err, TraceError::Malformed { line: 1, .. }));
        let err = MobilityTrace::parse("x 1 2 3".as_bytes()).unwrap_err();
        assert!(matches!(err, TraceError::Malformed { .. }));
        let err = MobilityTrace::parse("0 -5 2 3".as_bytes()).unwrap_err();
        assert!(matches!(err, TraceError::Malformed { .. }));
        let err = MobilityTrace::parse("0 nan 2 3".as_bytes()).unwrap_err();
        assert!(matches!(err, TraceError::Malformed { .. }));
    }

    #[test]
    fn malformed_error_names_the_file_on_load() {
        let dir = std::env::temp_dir().join("sdsrp_trace_err_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.trace");
        std::fs::write(&path, "0 1 2\n").unwrap();
        let err = MobilityTrace::load(&path).unwrap_err();
        let text = err.to_string();
        assert!(
            text.contains("bad.trace:1:"),
            "expected path and line in {text:?}"
        );
        assert!(text.contains("expected 4 fields"), "got {text:?}");

        // In-memory parsing keeps the path-free wording.
        let err = MobilityTrace::parse("0 1 2".as_bytes()).unwrap_err();
        assert!(matches!(err, TraceError::Malformed { path: None, .. }));
        assert!(err.to_string().starts_with("trace line 1:"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn parse_rejects_duplicate_timestamps() {
        let err = MobilityTrace::parse("0 5 1 1\n0 5 2 2\n".as_bytes()).unwrap_err();
        assert_eq!(err, TraceError::DuplicateTimestamp { node: 0, time: 5.0 });
    }

    #[test]
    fn unsorted_input_is_sorted_on_finish() {
        let text = "0 10 1 0\n0 0 0 0\n";
        let trace = MobilityTrace::parse(text.as_bytes()).unwrap();
        let s = trace.node_samples(0);
        assert!(s[0].0 < s[1].0);
    }

    #[test]
    fn replay_interpolates_and_clamps() {
        let mut trace = MobilityTrace::with_nodes(1);
        trace.push(0, t(10.0), Point2::new(0.0, 0.0));
        trace.push(0, t(20.0), Point2::new(10.0, 0.0));
        trace.push(0, t(30.0), Point2::new(10.0, 10.0));
        let trace = trace.finish().unwrap();
        let mut replay = trace.replay().remove(0);
        assert_eq!(replay.position_at(t(0.0)), Point2::new(0.0, 0.0)); // clamp front
        assert_eq!(replay.position_at(t(15.0)), Point2::new(5.0, 0.0));
        assert_eq!(replay.position_at(t(25.0)), Point2::new(10.0, 5.0));
        assert_eq!(replay.position_at(t(99.0)), Point2::new(10.0, 10.0)); // clamp back
    }

    #[test]
    fn replay_handles_empty_node() {
        let trace = MobilityTrace::with_nodes(1);
        let trace = trace.finish().unwrap();
        let mut replay = trace.replay().remove(0);
        assert_eq!(replay.position_at(t(5.0)), Point2::default());
    }

    #[test]
    fn recorded_trace_matches_model_at_sample_points() {
        let cfg = RandomWaypointConfig::paper();
        let make = |sub| -> Box<dyn Mobility> {
            Box::new(LegMover::new(
                RandomWaypointPlanner::new(cfg),
                substream_rng(11, streams::MOBILITY, sub),
            ))
        };
        let mut models: Vec<Box<dyn Mobility>> = vec![make(0), make(1)];
        let trace = MobilityTrace::record(&mut models, t(600.0), 30.0);
        assert_eq!(trace.node_count(), 2);
        assert_eq!(trace.sample_count(), 2 * 21);

        // Fresh copies of the same models must agree with the replay at
        // the sampled instants.
        let mut fresh: Vec<Box<dyn Mobility>> = vec![make(0), make(1)];
        let mut replays = trace.replay();
        for k in 0..=20 {
            let tt = t(k as f64 * 30.0);
            for i in 0..2 {
                let a = fresh[i].position_at(tt);
                let b = replays[i].position_at(tt);
                assert!(a.distance(b) < 1e-9, "node {i} diverged at {tt:?}");
            }
        }
    }
}
