//! Random-direction mobility.
//!
//! Each step: pick a uniformly random heading, travel in that direction
//! **until hitting the playground boundary**, pause, repeat. Compared to
//! random waypoint this removes the centre-of-area density bias; the
//! paper lists it among the models with exponential intermeeting tails.

use crate::model::{WaypointDecision, WaypointPlanner};
use dtn_core::geometry::{Point2, Rect, Vec2};
use dtn_core::rng::uniform_range;
use dtn_core::time::SimDuration;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Parameters for random-direction movement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RandomDirectionConfig {
    /// Playground rectangle.
    pub area: Rect,
    /// Minimum speed, m/s.
    pub min_speed: f64,
    /// Maximum speed, m/s.
    pub max_speed: f64,
    /// Pause at the boundary, seconds (uniform `[0, max_pause]`).
    pub max_pause: f64,
}

impl RandomDirectionConfig {
    /// Defaults matching the paper's playground and speed.
    pub fn paper_area() -> Self {
        RandomDirectionConfig {
            area: Rect::from_size(4500.0, 3400.0),
            min_speed: 2.0,
            max_speed: 2.0,
            max_pause: 0.0,
        }
    }
}

/// The random-direction planner (see module docs).
#[derive(Debug, Clone)]
pub struct RandomDirectionPlanner {
    cfg: RandomDirectionConfig,
}

impl RandomDirectionPlanner {
    /// Creates a planner; panics on invalid parameters.
    pub fn new(cfg: RandomDirectionConfig) -> Self {
        assert!(
            cfg.min_speed > 0.0 && cfg.max_speed >= cfg.min_speed,
            "invalid speed range"
        );
        assert!(cfg.max_pause >= 0.0, "pause must be non-negative");
        RandomDirectionPlanner { cfg }
    }

    /// First intersection of the ray `from + s*dir` (s > 0) with the area
    /// boundary.
    fn boundary_hit(&self, from: Point2, dir: Vec2) -> Point2 {
        let a = &self.cfg.area;
        let mut s = f64::INFINITY;
        if dir.x > 1e-12 {
            s = s.min((a.max.x - from.x) / dir.x);
        } else if dir.x < -1e-12 {
            s = s.min((a.min.x - from.x) / dir.x);
        }
        if dir.y > 1e-12 {
            s = s.min((a.max.y - from.y) / dir.y);
        } else if dir.y < -1e-12 {
            s = s.min((a.min.y - from.y) / dir.y);
        }
        if !s.is_finite() || s <= 0.0 {
            // Degenerate direction or already on the boundary heading out:
            // stay put for this leg.
            return from;
        }
        a.clamp(from + dir * s)
    }
}

impl WaypointPlanner for RandomDirectionPlanner {
    fn initial_position(&mut self, rng: &mut StdRng) -> Point2 {
        Point2::new(
            uniform_range(rng, self.cfg.area.min.x, self.cfg.area.max.x),
            uniform_range(rng, self.cfg.area.min.y, self.cfg.area.max.y),
        )
    }

    fn next_decision(&mut self, from: Point2, rng: &mut StdRng) -> WaypointDecision {
        let angle: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
        let dest = self.boundary_hit(from, Vec2::from_angle(angle));
        WaypointDecision {
            dest,
            speed: uniform_range(rng, self.cfg.min_speed, self.cfg.max_speed),
            pause: SimDuration::from_secs(uniform_range(rng, 0.0, self.cfg.max_pause)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{LegMover, Mobility};
    use dtn_core::rng::{streams, substream_rng};
    use dtn_core::time::SimTime;

    #[test]
    fn destinations_are_on_boundary() {
        let cfg = RandomDirectionConfig::paper_area();
        let planner = RandomDirectionPlanner::new(cfg);
        let from = Point2::new(1000.0, 1000.0);
        for i in 0..64 {
            let angle = i as f64 * std::f64::consts::TAU / 64.0;
            let hit = planner.boundary_hit(from, Vec2::from_angle(angle));
            let a = cfg.area;
            let on_boundary = (hit.x - a.min.x).abs() < 1e-6
                || (hit.x - a.max.x).abs() < 1e-6
                || (hit.y - a.min.y).abs() < 1e-6
                || (hit.y - a.max.y).abs() < 1e-6;
            assert!(on_boundary, "hit {hit:?} not on boundary");
        }
    }

    #[test]
    fn stays_inside_area() {
        let cfg = RandomDirectionConfig::paper_area();
        let mut m = LegMover::new(
            RandomDirectionPlanner::new(cfg),
            substream_rng(8, streams::MOBILITY, 0),
        );
        for i in 0..2000 {
            let p = m.position_at(SimTime::from_secs(i as f64 * 13.0));
            assert!(cfg.area.contains(p), "escaped at {p:?}");
        }
    }

    #[test]
    fn corner_start_does_not_loop_forever() {
        // A node exactly in a corner can draw outward angles: those legs
        // degrade to zero-length and the planner must recover.
        let cfg = RandomDirectionConfig {
            max_pause: 1.0,
            ..RandomDirectionConfig::paper_area()
        };
        let planner = RandomDirectionPlanner::new(cfg);
        let corner = Point2::new(0.0, 0.0);
        let hit = planner.boundary_hit(corner, Vec2::from_angle(std::f64::consts::PI));
        assert_eq!(hit, corner);
    }
}
