//! Random-waypoint mobility (the paper's synthetic scenario, Table II).
//!
//! Each node repeatedly: picks a destination uniformly at random in the
//! playground, travels there in a straight line at a speed drawn from
//! `[min_speed, max_speed]`, pauses for a time drawn from
//! `[min_pause, max_pause]`, and repeats. The paper uses a fixed 2 m/s
//! speed and (implicitly, ONE's default) no pause; both are configurable.

use crate::model::{WaypointDecision, WaypointPlanner};
use dtn_core::geometry::{Point2, Rect};
use dtn_core::rng::uniform_range;
use dtn_core::time::SimDuration;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// Parameters for random-waypoint movement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RandomWaypointConfig {
    /// Playground rectangle.
    pub area: Rect,
    /// Minimum travel speed, m/s.
    pub min_speed: f64,
    /// Maximum travel speed, m/s.
    pub max_speed: f64,
    /// Minimum pause at each waypoint, seconds.
    pub min_pause: f64,
    /// Maximum pause at each waypoint, seconds.
    pub max_pause: f64,
}

impl RandomWaypointConfig {
    /// The paper's Table II settings: 4500 m x 3400 m, fixed 2 m/s, no
    /// pause.
    pub fn paper() -> Self {
        RandomWaypointConfig {
            area: Rect::from_size(4500.0, 3400.0),
            min_speed: 2.0,
            max_speed: 2.0,
            min_pause: 0.0,
            max_pause: 0.0,
        }
    }

    fn validate(&self) {
        assert!(
            self.min_speed > 0.0 && self.max_speed >= self.min_speed,
            "invalid speed range [{}, {}]",
            self.min_speed,
            self.max_speed
        );
        assert!(
            self.min_pause >= 0.0 && self.max_pause >= self.min_pause,
            "invalid pause range [{}, {}]",
            self.min_pause,
            self.max_pause
        );
    }
}

/// The random-waypoint planner (see module docs).
#[derive(Debug, Clone)]
pub struct RandomWaypointPlanner {
    cfg: RandomWaypointConfig,
}

impl RandomWaypointPlanner {
    /// Creates a planner; panics on inconsistent speed/pause ranges.
    pub fn new(cfg: RandomWaypointConfig) -> Self {
        cfg.validate();
        RandomWaypointPlanner { cfg }
    }

    fn random_point(&self, rng: &mut StdRng) -> Point2 {
        Point2::new(
            uniform_range(rng, self.cfg.area.min.x, self.cfg.area.max.x),
            uniform_range(rng, self.cfg.area.min.y, self.cfg.area.max.y),
        )
    }
}

impl WaypointPlanner for RandomWaypointPlanner {
    fn initial_position(&mut self, rng: &mut StdRng) -> Point2 {
        self.random_point(rng)
    }

    fn next_decision(&mut self, _from: Point2, rng: &mut StdRng) -> WaypointDecision {
        WaypointDecision {
            dest: self.random_point(rng),
            speed: uniform_range(rng, self.cfg.min_speed, self.cfg.max_speed),
            pause: SimDuration::from_secs(uniform_range(
                rng,
                self.cfg.min_pause,
                self.cfg.max_pause,
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{LegMover, Mobility};
    use dtn_core::rng::{streams, substream_rng};
    use dtn_core::time::SimTime;

    #[test]
    fn stays_inside_area() {
        let cfg = RandomWaypointConfig::paper();
        let mut m = LegMover::new(
            RandomWaypointPlanner::new(cfg),
            substream_rng(42, streams::MOBILITY, 0),
        );
        for i in 0..2000 {
            let p = m.position_at(SimTime::from_secs(i as f64 * 10.0));
            assert!(cfg.area.contains(p), "escaped playground at {p:?}");
        }
    }

    #[test]
    fn moves_at_configured_speed() {
        let cfg = RandomWaypointConfig::paper();
        let mut m = LegMover::new(
            RandomWaypointPlanner::new(cfg),
            substream_rng(7, streams::MOBILITY, 3),
        );
        // With zero pause and fixed speed, displacement over a short dt is
        // at most speed * dt (less when a turn happens inside dt).
        let dt = 1.0;
        let mut prev = m.position_at(SimTime::ZERO);
        for i in 1..5000 {
            let now = m.position_at(SimTime::from_secs(i as f64 * dt));
            let d = prev.distance(now);
            assert!(d <= 2.0 * dt + 1e-9, "moved {d} m in {dt} s at step {i}");
            prev = now;
        }
    }

    #[test]
    fn different_nodes_get_different_paths() {
        let cfg = RandomWaypointConfig::paper();
        let mut a = LegMover::new(
            RandomWaypointPlanner::new(cfg),
            substream_rng(42, streams::MOBILITY, 0),
        );
        let mut b = LegMover::new(
            RandomWaypointPlanner::new(cfg),
            substream_rng(42, streams::MOBILITY, 1),
        );
        let pa = a.position_at(SimTime::from_secs(100.0));
        let pb = b.position_at(SimTime::from_secs(100.0));
        assert_ne!(pa, pb);
    }

    #[test]
    fn same_seed_reproduces_exactly() {
        let cfg = RandomWaypointConfig::paper();
        let mk = || {
            LegMover::new(
                RandomWaypointPlanner::new(cfg),
                substream_rng(9, streams::MOBILITY, 5),
            )
        };
        let mut a = mk();
        let mut b = mk();
        for i in 0..200 {
            let t = SimTime::from_secs(i as f64 * 37.0);
            assert_eq!(a.position_at(t), b.position_at(t));
        }
    }

    #[test]
    #[should_panic(expected = "invalid speed range")]
    fn rejects_zero_speed() {
        let mut cfg = RandomWaypointConfig::paper();
        cfg.min_speed = 0.0;
        cfg.max_speed = 0.0;
        let _ = RandomWaypointPlanner::new(cfg);
    }
}
