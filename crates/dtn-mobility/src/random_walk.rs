//! Random-walk (Brownian-style) mobility.
//!
//! Each step: choose a uniformly random direction, walk a fixed step
//! length at a speed from `[min_speed, max_speed]`; steps that would leave
//! the playground are reflected back inside. The paper cites random walk
//! as one of the mobility patterns with exponentially-tailed intermeeting
//! times (\[22\] in the paper); we ship it so the Fig. 3 claim can be
//! checked against more than one synthetic model.

use crate::model::{WaypointDecision, WaypointPlanner};
use dtn_core::geometry::{Point2, Rect, Vec2};
use dtn_core::rng::uniform_range;
use dtn_core::time::SimDuration;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Parameters for random-walk movement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RandomWalkConfig {
    /// Playground rectangle.
    pub area: Rect,
    /// Length of each straight segment, metres.
    pub step_length: f64,
    /// Minimum speed, m/s.
    pub min_speed: f64,
    /// Maximum speed, m/s.
    pub max_speed: f64,
    /// Pause between steps, seconds (uniform `[0, max_pause]`).
    pub max_pause: f64,
}

impl RandomWalkConfig {
    /// A sensible default matching the paper's playground and speed.
    pub fn paper_area() -> Self {
        RandomWalkConfig {
            area: Rect::from_size(4500.0, 3400.0),
            step_length: 100.0,
            min_speed: 2.0,
            max_speed: 2.0,
            max_pause: 0.0,
        }
    }
}

/// The random-walk planner (see module docs).
#[derive(Debug, Clone)]
pub struct RandomWalkPlanner {
    cfg: RandomWalkConfig,
}

impl RandomWalkPlanner {
    /// Creates a planner; panics on invalid parameters.
    pub fn new(cfg: RandomWalkConfig) -> Self {
        assert!(cfg.step_length > 0.0, "step length must be positive");
        assert!(
            cfg.min_speed > 0.0 && cfg.max_speed >= cfg.min_speed,
            "invalid speed range"
        );
        assert!(cfg.max_pause >= 0.0, "pause must be non-negative");
        RandomWalkPlanner { cfg }
    }

    /// Reflects `p` into the area (mirror at each boundary once; the step
    /// length is assumed smaller than the playground so one reflection per
    /// axis suffices).
    fn reflect(&self, p: Point2) -> Point2 {
        let a = &self.cfg.area;
        let mut x = p.x;
        let mut y = p.y;
        if x < a.min.x {
            x = 2.0 * a.min.x - x;
        } else if x > a.max.x {
            x = 2.0 * a.max.x - x;
        }
        if y < a.min.y {
            y = 2.0 * a.min.y - y;
        } else if y > a.max.y {
            y = 2.0 * a.max.y - y;
        }
        a.clamp(Point2::new(x, y))
    }
}

impl WaypointPlanner for RandomWalkPlanner {
    fn initial_position(&mut self, rng: &mut StdRng) -> Point2 {
        Point2::new(
            uniform_range(rng, self.cfg.area.min.x, self.cfg.area.max.x),
            uniform_range(rng, self.cfg.area.min.y, self.cfg.area.max.y),
        )
    }

    fn next_decision(&mut self, from: Point2, rng: &mut StdRng) -> WaypointDecision {
        let angle: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
        let dest = self.reflect(from + Vec2::from_angle(angle) * self.cfg.step_length);
        WaypointDecision {
            dest,
            speed: uniform_range(rng, self.cfg.min_speed, self.cfg.max_speed),
            pause: SimDuration::from_secs(uniform_range(rng, 0.0, self.cfg.max_pause)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{LegMover, Mobility};
    use dtn_core::rng::{streams, substream_rng};
    use dtn_core::time::SimTime;

    #[test]
    fn stays_inside_area() {
        let cfg = RandomWalkConfig::paper_area();
        let mut m = LegMover::new(
            RandomWalkPlanner::new(cfg),
            substream_rng(5, streams::MOBILITY, 0),
        );
        for i in 0..3000 {
            let p = m.position_at(SimTime::from_secs(i as f64 * 7.0));
            assert!(cfg.area.contains(p), "escaped at {p:?}");
        }
    }

    #[test]
    fn step_length_bounds_leg() {
        let cfg = RandomWalkConfig::paper_area();
        let mut m = LegMover::new(
            RandomWalkPlanner::new(cfg),
            substream_rng(6, streams::MOBILITY, 1),
        );
        // Over 50 s at 2 m/s the node can cover exactly 100 m = one step.
        let mut prev = m.position_at(SimTime::ZERO);
        for i in 1..500 {
            let now = m.position_at(SimTime::from_secs(i as f64 * 50.0));
            // displacement between samples can never exceed distance travelled
            assert!(prev.distance(now) <= 100.0 + 1e-9);
            prev = now;
        }
    }

    #[test]
    fn reflection_keeps_point_inside() {
        let planner = RandomWalkPlanner::new(RandomWalkConfig::paper_area());
        let inside = planner.reflect(Point2::new(-30.0, 3500.0));
        assert!(RandomWalkConfig::paper_area().area.contains(inside));
        // Interior points are untouched.
        let p = Point2::new(100.0, 100.0);
        assert_eq!(planner.reflect(p), p);
    }

    #[test]
    #[should_panic(expected = "step length")]
    fn rejects_zero_step() {
        let mut cfg = RandomWalkConfig::paper_area();
        cfg.step_length = 0.0;
        let _ = RandomWalkPlanner::new(cfg);
    }
}
