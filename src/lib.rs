//! # sdsrp — facade crate
//!
//! Reproduction of *"A Buffer Management Strategy on Spray and Wait
//! Routing Protocol in DTNs"* (En Wang, Yongjian Yang, Jie Wu, Wenbin
//! Liu; ICPP 2015).
//!
//! This crate re-exports the whole workspace under one roof so examples
//! and downstream users can depend on a single package:
//!
//! * [`core`] — DES engine, geometry, statistics ([`dtn_core`]).
//! * [`mobility`] — movement models incl. the EPFL-trace substitute
//!   ([`dtn_mobility`]).
//! * [`net`] — radio contacts and transfers ([`dtn_net`]).
//! * [`buffer`] — buffer-policy framework and baselines ([`dtn_buffer`]).
//! * [`sdsrp`] — the paper's contribution: SDSRP priorities, estimators
//!   and the policy itself ([`sdsrp_core`]).
//! * [`routing`] — Spray-and-Wait and friends ([`dtn_routing`]).
//! * [`sim`] — scenario assembly, metrics, sweeps ([`dtn_sim`]).
//! * [`analysis`] — distribution fitting and table output
//!   ([`dtn_analysis`]).
//! * [`telemetry`] — metrics registry, structured event log and run
//!   manifests ([`dtn_telemetry`]).
//! * [`validate`] — simulation invariants, the estimator oracle and
//!   run fingerprints ([`dtn_validate`]); replay harnesses live in
//!   [`sim::replay`].
//! * [`fleet`] — distributed sweep fan-out: coordinator, worker
//!   protocol and transports ([`dtn_fleet`]).
//!
//! ## Quick start
//!
//! See `examples/quickstart.rs`; in short:
//!
//! ```no_run
//! use sdsrp::sim::config::{presets, PolicyKind};
//! use sdsrp::sim::world::World;
//!
//! let mut cfg = presets::random_waypoint_paper();
//! cfg.policy = PolicyKind::Sdsrp;
//! cfg.seed = 1;
//! let report = World::build(&cfg).run();
//! println!("delivery ratio = {:.3}", report.delivery_ratio());
//! ```

pub use dtn_analysis as analysis;
pub use dtn_buffer as buffer;
pub use dtn_core as core;
pub use dtn_fleet as fleet;
pub use dtn_mobility as mobility;
pub use dtn_net as net;
pub use dtn_routing as routing;
pub use dtn_sim as sim;
pub use dtn_telemetry as telemetry;
pub use dtn_validate as validate;
pub use sdsrp_core as sdsrp;

/// Version of the reproduction workspace.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn version_is_nonempty() {
        assert!(!super::VERSION.is_empty());
    }
}
