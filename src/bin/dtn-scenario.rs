//! `dtn-scenario` — run a DTN simulation scenario from the command line.
//!
//! ```text
//! # run a preset
//! dtn-scenario --preset rwp --policy sdsrp --seed 3
//!
//! # dump a preset's JSON, edit it, run it
//! dtn-scenario --preset epfl --emit-config > my.json
//! dtn-scenario --config my.json --json
//!
//! # sample a buffer-occupancy time series alongside
//! dtn-scenario --preset smoke --timeseries occupancy.csv
//!
//! # export a structured event log (JSONL) plus a run manifest
//! dtn-scenario --preset smoke --telemetry events.jsonl
//! ```
//!
//! Flags: `--preset rwp|epfl|smoke`, `--config FILE`, `--policy NAME`,
//! `--routing NAME`, `--seed N`, `--duration SECS`, `--copies L`,
//! `--buffer-mb X`, `--immunity none|oracle|gossip`, `--json`,
//! `--emit-config`, `--timeseries FILE`, `--telemetry FILE`,
//! `--validate`, `--no-priority-cache`, `--taylor-terms K`,
//! `--replay MANIFEST`.
//!
//! `--telemetry FILE` streams every simulation event as one JSON object
//! per line to `FILE` and writes a run manifest (config hash, seed,
//! event totals, metrics) to `FILE.manifest.json`.
//!
//! `--validate` runs the simulation with invariant checking and the
//! estimator oracle enabled; any violation makes the process exit
//! non-zero. `--replay FILE.manifest.json` re-runs the scenario a
//! manifest records and fails unless the re-run reproduces it exactly.
//!
//! `--no-priority-cache` disables the SDSRP priority memoisation cache
//! (the reference path used by the differential regression suite).
//! Results are bit-identical either way; this flag only changes speed.
//!
//! `--taylor-terms K` truncates SDSRP's Eq. 13 priority to a K-term
//! Taylor series (the paper's Fig. 4 ablation axis); `0` means the
//! exact closed form. Applies to `sdsrp` and custom SDSRP policies.
//!
//! `--sweep copies|buffer|genrate|occupancy` sweeps the axis of that
//! name over the resolved base scenario, through the hardened runner: a
//! panicking cell is reported and the rest of the sweep still
//! completes. The paper axes run the paper's four policies; the
//! `occupancy` axis sweeps the congestion threshold of the two
//! congestion-adaptive policies (`OccupancyGate`, `TieredRetention`)
//! with plain Spray and Wait and SDSRP as flat reference lines.
//! `--validate-cells` attaches the invariant checkers to every cell,
//! `--checkpoint FILE` streams finished cells as JSONL, and `--resume`
//! skips cells already in the checkpoint (bit-identical to an
//! uninterrupted run).
//!
//! `--delay-oracle` runs the scenario once with contact recording, fits
//! the pairwise intermeeting rate λ, and scores the simulated
//! first-delivery delays against the closed-form binary Spray and Wait
//! delay CDF (Diana & Lochin): predicted-vs-simulated CDF rows with
//! 95 % error bands and the KS max deviation, as a table or (with
//! `--json`) a machine-checkable object. See EXPERIMENTS.md, "Analytic
//! delay validation".
//!
//! `--workers N` distributes the sweep over N `dtn-fleet-worker`
//! subprocesses instead of in-process threads (same output,
//! bit-identical fingerprints). The coordinator heartbeat-monitors
//! workers, re-dispatches cells lost to dead or hung workers
//! (`--cell-timeout`, `--worker-timeout`, `--retries`), and merges
//! leftover per-worker shard checkpoints on `--resume`. `--worker-bin`
//! overrides the worker binary (default: `dtn-fleet-worker` next to
//! this executable, or `$DTN_FLEET_WORKER`).
//!
//! `--transport tcp` listens on `--listen ADDR` (default
//! `127.0.0.1:0`; the bound address is printed) instead of spawning
//! subprocesses: start `dtn-fleet-worker --connect HOST:PORT` on any
//! machine (same `--token`, if set) and the coordinator adopts the
//! first N to authenticate — plus late joiners to replace lost
//! workers. Output stays bit-identical to every other backend. See
//! EXPERIMENTS.md ("Multi-host sweeps over TCP") for the runbook.

use sdsrp::fleet::{
    locate_worker, run_sweep_fleet, FleetOptions, SubprocessTransport, TcpTransport, Transport,
};
use sdsrp::sim::config::{presets, ImmunityMode, PolicyKind, RoutingKind, ScenarioConfig};
use sdsrp::sim::output::{Metric, SeriesTable};
use sdsrp::sim::replay::{manifest_for_run, replay_manifest};
use sdsrp::sim::sweep::{run_sweep_hardened, SweepAxis, SweepCheckpoint, SweepOptions, SweepSpec};
use sdsrp::sim::world::World;
use sdsrp::telemetry::{JsonlSink, Recorder, RunManifest};
use sdsrp::validate::ValidateConfig;
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage: dtn-scenario [--preset rwp|epfl|smoke] [--config FILE]\n\
         \t[--policy fifo|lifo|ttl|copies|mofo|shli|random|knapsack|sdsrp|\n\
         \t\tocc-gate|tiered]\n\
         \t[--routing saw|saw-source|epidemic|direct|focus|prophet]\n\
         \t[--seed N] [--duration SECS] [--copies L] [--buffer-mb X]\n\
         \t[--immunity none|oracle|gossip] [--warmup SECS] [--json] [--emit-config]\n\
         \t[--timeseries FILE] [--telemetry FILE] [--validate] [--delay-oracle]\n\
         \t[--no-priority-cache] [--taylor-terms K] [--replay MANIFEST.json]\n\
         \t[--threads N] [--world-threads N]\n\
         \t[--sweep copies|buffer|genrate|occupancy [--seeds N]\n\
         \t\t[--validate-cells] [--checkpoint FILE [--resume]]\n\
         \t\t[--workers N [--worker-bin FILE] [--cell-timeout SECS]\n\
         \t\t[--worker-timeout SECS] [--retries N] [--worker-arg ARG]...\n\
         \t\t[--transport subprocess|tcp] [--listen ADDR] [--token SECRET]\n\
         \t\t[--accept-timeout SECS]]]\n\
         \n\
         --threads N: single runs execute the world's parallel tick phases\n\
         on N threads; in --sweep mode it fans cells out across N workers\n\
         (use --world-threads for intra-run threading there). Results are\n\
         bit-identical at any thread count."
    );
    exit(2);
}

/// Fleet-distribution knobs of `--sweep` mode (`--workers 0` = run
/// in-process).
struct FleetCli {
    workers: usize,
    worker_bin: Option<String>,
    cell_timeout: f64,
    worker_timeout: f64,
    retries: u32,
    /// Extra CLI arguments for every worker (repeatable `--worker-arg`;
    /// CI uses this for the `--fail-once`/`--hang-once` fault hooks).
    worker_args: Vec<String>,
    /// `subprocess` (default) spawns workers locally; `tcp` listens and
    /// waits for `dtn-fleet-worker --connect` peers instead.
    transport: String,
    /// `--listen` bind address for `--transport tcp` (default
    /// `127.0.0.1:0`; the chosen port is printed to stderr).
    listen: String,
    /// Shared-secret handshake token for `--transport tcp`.
    token: Option<String>,
    /// How long to wait for each of the first N workers to dial in.
    accept_timeout: f64,
}

/// `--sweep` mode: one paper axis x the paper's four policies through
/// the hardened runner (in-process threads, or a subprocess worker
/// fleet with `--workers N`). Prints the three paper metrics as
/// markdown.
#[allow(clippy::too_many_arguments)]
fn run_sweep_mode(
    base: ScenarioConfig,
    axis_name: &str,
    n_seeds: u64,
    threads: usize,
    world_threads: usize,
    validate_cells: bool,
    checkpoint: Option<String>,
    resume: bool,
    fleet: FleetCli,
) -> ! {
    let (axis, policies) = match axis_name {
        "copies" => (SweepAxis::paper_copies(), PolicyKind::paper_four().to_vec()),
        "buffer" => (
            SweepAxis::paper_buffers(),
            PolicyKind::paper_four().to_vec(),
        ),
        "genrate" => (
            SweepAxis::paper_gen_rates(),
            PolicyKind::paper_four().to_vec(),
        ),
        // Congestion-threshold sweep: the axis rewrites the two
        // congestion-adaptive policies' thresholds; the baselines
        // ignore it and plot as flat reference lines.
        "occupancy" => (
            SweepAxis::occupancy_thresholds(),
            vec![
                PolicyKind::Fifo,
                PolicyKind::Sdsrp,
                PolicyKind::OccupancyGate { threshold: 0.8 },
                PolicyKind::TieredRetention {
                    tiers: 4,
                    threshold: 0.9,
                },
            ],
        ),
        other => {
            eprintln!("unknown sweep axis {other:?}");
            usage()
        }
    };
    let spec = SweepSpec {
        base,
        axis,
        policies,
        seeds: (1..=n_seeds).collect(),
        validate: validate_cells,
    };
    let xlabel = spec.axis.name().to_string();
    let progress = |p: sdsrp::sim::sweep::SweepProgress| {
        eprint!("\rsweep: {}/{} runs done    ", p.completed, p.total);
        use std::io::Write as _;
        let _ = std::io::stderr().flush();
    };
    let sweep_checkpoint = checkpoint.map(|path| SweepCheckpoint {
        path: path.into(),
        resume,
    });
    let out = if fleet.workers > 0 {
        let transport: Box<dyn Transport> = match fleet.transport.as_str() {
            "tcp" => {
                let tcp = TcpTransport::bind(&fleet.listen)
                    .unwrap_or_else(|e| {
                        eprintln!("{e}");
                        exit(2);
                    })
                    .with_token(fleet.token.clone())
                    .with_timeouts(fleet.accept_timeout, fleet.worker_timeout.max(1.0));
                tcp.expect_workers(fleet.workers);
                eprintln!(
                    "fleet: listening on {} (token {}), waiting for {} worker(s) \
                     to `dtn-fleet-worker --connect`",
                    tcp.local_addr(),
                    if fleet.token.is_some() {
                        "required"
                    } else {
                        "none"
                    },
                    fleet.workers
                );
                Box::new(tcp)
            }
            "subprocess" => {
                let worker_bin = match &fleet.worker_bin {
                    Some(path) => std::path::PathBuf::from(path),
                    None => locate_worker().unwrap_or_else(|e| {
                        eprintln!("{e}");
                        exit(2);
                    }),
                };
                Box::new(SubprocessTransport {
                    checkpoint: sweep_checkpoint.as_ref().map(|ck| ck.path.clone()),
                    extra_args: fleet.worker_args.clone(),
                    ..SubprocessTransport::new(worker_bin)
                })
            }
            other => {
                eprintln!("unknown transport {other:?} (subprocess|tcp)");
                usage()
            }
        };
        let events = |ev: &sdsrp::telemetry::SweepEvent| {
            use sdsrp::telemetry::SweepEvent as E;
            if matches!(ev, E::WorkerSpawned { .. } | E::WorkerLost { .. }) {
                eprintln!("\r{}    ", ev.to_jsonl());
            }
        };
        let (out, stats) = run_sweep_fleet(
            &spec,
            transport.as_ref(),
            &FleetOptions {
                workers: fleet.workers,
                checkpoint: sweep_checkpoint,
                cell_timeout_secs: fleet.cell_timeout,
                worker_timeout_secs: fleet.worker_timeout,
                max_cell_retries: fleet.retries,
                progress: Some(&progress),
                events: Some(&events),
                ..FleetOptions::default()
            },
        )
        .unwrap_or_else(|e| {
            eprintln!("{e}");
            exit(2);
        });
        eprintln!(
            "\rfleet: {} workers ({}), {} dispatched, {} retries, {} lost, {:.1}s wall",
            stats.workers,
            stats.transport,
            stats.dispatched,
            stats.retries,
            stats.workers_lost,
            stats.wall_clock_secs
        );
        for w in &stats.per_worker {
            eprintln!(
                "fleet: worker {} (pid {}) {} cells, {:.1}% busy{}",
                w.worker,
                w.pid,
                w.cells_completed,
                w.utilization * 100.0,
                if w.restarts > 0 {
                    format!(", {} restarts", w.restarts)
                } else {
                    String::new()
                }
            );
        }
        out
    } else {
        run_sweep_hardened(
            &spec,
            &SweepOptions {
                threads,
                world_threads,
                checkpoint: sweep_checkpoint,
                progress: Some(&progress),
                ..SweepOptions::default()
            },
        )
    };
    eprintln!(
        "\rsweep: {} runs ({} executed, {} resumed), {} events",
        out.runs.len(),
        out.executed,
        out.resumed,
        out.totals.total()
    );
    if let Some(err) = &out.checkpoint_error {
        eprintln!("warning: {err}");
    }
    for metric in [
        Metric::DeliveryRatio,
        Metric::AvgHopcount,
        Metric::OverheadRatio,
        Metric::AvgLatency,
    ] {
        let title = format!("{} vs {xlabel}", metric.name());
        let table = SeriesTable::from_cells(&title, &xlabel, &out.cells, metric);
        println!("{}", table.to_markdown());
    }
    for err in &out.errors {
        eprintln!("{err}");
    }
    if validate_cells && out.violations > 0 {
        eprintln!("{} invariant violation(s) across cells", out.violations);
    }
    if out.errors.is_empty() && (!validate_cells || out.violations == 0) {
        exit(0);
    }
    exit(1);
}

/// `--delay-oracle` mode: run the scenario once with contact recording,
/// estimate the pairwise intermeeting rate λ, and score the simulated
/// first-delivery delays against the Diana & Lochin closed-form delay
/// CDF for binary Spray and Wait. Prints predicted-vs-simulated CDF
/// rows with 95 % error bands plus the KS max deviation; `--json` emits
/// the same as one machine-checkable object (the CI gate reads
/// `.ks_deviation`). Exits non-zero only when there is no data to score
/// (no contacts or no deliveries) — judging the deviation is the
/// caller's policy, not ours.
///
/// λ is the count-based Poisson rate MLE, contacts / (pairs × T): the
/// per-pair gap fit (`fit_exponential` over `intermeeting_times`) only
/// sees gaps short enough to close inside the observation window, so it
/// over-estimates λ badly when E(I) is within an order of magnitude of
/// the run length (the gap fit is still reported as a diagnostic).
fn run_delay_oracle_mode(cfg: ScenarioConfig, threads: usize, json_out: bool) -> ! {
    use sdsrp::analysis::{fit_exponential, mean_ci95};
    use sdsrp::validate::DelayModel;

    if !matches!(cfg.routing, RoutingKind::SprayAndWaitBinary) {
        eprintln!("--delay-oracle models binary Spray and Wait; use --routing saw");
        exit(2);
    }
    let mut world = World::build(&cfg);
    world.set_threads(threads.max(1));
    world.enable_contact_recording();
    let (report, trace) = world.run_with_trace();

    if trace.is_empty() {
        eprintln!("no contacts recorded: cannot estimate λ");
        exit(1);
    }
    let n_pairs = cfg.n_nodes * (cfg.n_nodes - 1) / 2;
    let lambda = trace.len() as f64 / (n_pairs as f64 * cfg.duration_secs);
    let intermeetings = trace.intermeeting_times();
    let lambda_gap_fit = fit_exponential(&intermeetings).map(|f| f.lambda);
    let delays = report.latency_samples();
    if delays.is_empty() {
        eprintln!("no deliveries: nothing to score against the delay model");
        exit(1);
    }
    let model = DelayModel::new(cfg.n_nodes, cfg.initial_copies, lambda);
    let mut sorted = delays.to_vec();
    let ks = model.ks_deviation(&mut sorted);

    // CDF rows on a fixed decile grid of the observed delay range, each
    // with a 95 % CI over the per-message Bernoulli indicator
    // 1[delay <= t] (the empirical CDF is a mean of indicators).
    #[derive(serde::Serialize)]
    struct CdfRow {
        t_secs: f64,
        predicted: f64,
        simulated: f64,
        ci_half_width: f64,
    }
    let t_max = *sorted.last().expect("non-empty");
    let rows: Vec<CdfRow> = (1..=10)
        .map(|k| {
            let t = t_max * k as f64 / 10.0;
            let indicators: Vec<f64> = sorted
                .iter()
                .map(|&d| if d <= t { 1.0 } else { 0.0 })
                .collect();
            let ci = mean_ci95(&indicators).expect("non-empty");
            CdfRow {
                t_secs: t,
                predicted: model.predicted_delay_cdf(t),
                simulated: ci.mean,
                ci_half_width: ci.half_width,
            }
        })
        .collect();

    let simulated_mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
    if json_out {
        #[derive(serde::Serialize)]
        struct Out<'a> {
            scenario: &'a str,
            policy: &'a str,
            seed: u64,
            n_nodes: usize,
            copies: u32,
            lambda: f64,
            lambda_gap_fit: Option<f64>,
            contacts: usize,
            intermeeting_samples: usize,
            delay_samples: usize,
            delivery_ratio: f64,
            ks_deviation: f64,
            predicted_mean_delay_secs: f64,
            simulated_mean_delay_secs: f64,
            cdf: Vec<CdfRow>,
        }
        let out = Out {
            scenario: &cfg.name,
            policy: cfg.policy.label(),
            seed: cfg.seed,
            n_nodes: cfg.n_nodes,
            copies: cfg.initial_copies,
            lambda,
            lambda_gap_fit,
            contacts: trace.len(),
            intermeeting_samples: intermeetings.len(),
            delay_samples: sorted.len(),
            delivery_ratio: report.delivery_ratio(),
            ks_deviation: ks,
            predicted_mean_delay_secs: model.mean_delay(),
            simulated_mean_delay_secs: simulated_mean,
            cdf: rows,
        };
        println!(
            "{}",
            serde_json::to_string_pretty(&out).expect("serialises")
        );
    } else {
        println!("scenario          : {}", cfg.name);
        println!("policy            : {}", cfg.policy.label());
        println!(
            "model             : binary SnW, N = {}, L = {}",
            cfg.n_nodes, cfg.initial_copies
        );
        println!(
            "estimated λ       : {:.3e} /s ({} contacts over {} pairs)",
            lambda,
            trace.len(),
            n_pairs
        );
        if let Some(gap) = lambda_gap_fit {
            println!(
                "gap-fit λ (diag.) : {:.3e} /s ({} intermeeting samples)",
                gap,
                intermeetings.len()
            );
        }
        println!(
            "delay samples     : {} (delivery ratio {:.3})",
            sorted.len(),
            report.delivery_ratio()
        );
        println!("predicted E[T]    : {:.0} s", model.mean_delay());
        println!("simulated E[T]    : {:.0} s", simulated_mean);
        println!("KS max deviation  : {ks:.4}");
        println!();
        println!("| t (s) | predicted F(t) | simulated F(t) | ±95% |");
        println!("|---|---|---|---|");
        for r in &rows {
            println!(
                "| {:.0} | {:.4} | {:.4} | {:.4} |",
                r.t_secs, r.predicted, r.simulated, r.ci_half_width
            );
        }
    }
    exit(0);
}

/// Re-runs the scenario recorded in a manifest file and reports whether
/// the re-run reproduced it bit-for-bit. Exits non-zero on divergence.
fn replay_from_file(path: &str) -> ! {
    let body = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        exit(1);
    });
    let original: RunManifest = serde_json::from_str(&body).unwrap_or_else(|e| {
        eprintln!("{path} is not a run manifest: {e:?}");
        exit(1);
    });
    match replay_manifest(&original) {
        Ok(outcome) if outcome.identical => {
            println!(
                "replay OK: {} (seed {}, policy {}) reproduced bit-identically",
                original.scenario, original.seed, original.policy
            );
            exit(0);
        }
        Ok(outcome) => {
            eprintln!(
                "replay DIVERGED on {} fields:\n{}",
                outcome.diff.len(),
                outcome.diff.join("\n")
            );
            exit(1);
        }
        Err(e) => {
            eprintln!("cannot replay {path}: {e}");
            exit(1);
        }
    }
}

fn parse_policy(s: &str) -> PolicyKind {
    match s {
        "fifo" => PolicyKind::Fifo,
        "lifo" => PolicyKind::Lifo,
        "ttl" => PolicyKind::TtlRatio,
        "copies" => PolicyKind::CopiesRatio,
        "mofo" => PolicyKind::Mofo,
        "shli" => PolicyKind::Shli,
        "random" => PolicyKind::Random,
        "knapsack" => PolicyKind::Knapsack,
        "sdsrp" => PolicyKind::Sdsrp,
        "occ-gate" => PolicyKind::OccupancyGate { threshold: 0.8 },
        "tiered" => PolicyKind::TieredRetention {
            tiers: 4,
            threshold: 0.9,
        },
        _ => {
            eprintln!("unknown policy {s:?}");
            usage()
        }
    }
}

fn parse_routing(s: &str) -> RoutingKind {
    match s {
        "saw" => RoutingKind::SprayAndWaitBinary,
        "saw-source" => RoutingKind::SprayAndWaitSource,
        "epidemic" => RoutingKind::Epidemic,
        "direct" => RoutingKind::Direct,
        "focus" => RoutingKind::SprayAndFocus {
            handoff_threshold: 60.0,
        },
        "prophet" => RoutingKind::Prophet,
        _ => {
            eprintln!("unknown routing {s:?}");
            usage()
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg: Option<ScenarioConfig> = None;
    let mut json_out = false;
    let mut emit_config = false;
    let mut timeseries_path: Option<String> = None;
    let mut telemetry_path: Option<String> = None;
    let mut validate = false;
    let mut delay_oracle = false;
    let mut priority_cache = true;
    let mut replay_path: Option<String> = None;
    let mut sweep_axis: Option<String> = None;
    let mut sweep_seeds: u64 = 3;
    let mut sweep_threads: usize = 0;
    let mut world_threads: usize = 1;
    let mut validate_cells = false;
    let mut checkpoint: Option<String> = None;
    let mut resume = false;
    let mut fleet = FleetCli {
        workers: 0,
        worker_bin: None,
        cell_timeout: 0.0,
        worker_timeout: 30.0,
        retries: 2,
        worker_args: Vec::new(),
        transport: "subprocess".into(),
        listen: "127.0.0.1:0".into(),
        token: None,
        accept_timeout: 30.0,
    };
    type Override = Box<dyn Fn(&mut ScenarioConfig)>;
    let mut overrides: Vec<Override> = Vec::new();

    let mut i = 0;
    let next = |args: &[String], i: &mut usize| -> String {
        *i += 1;
        args.get(*i).cloned().unwrap_or_else(|| usage())
    };
    while i < args.len() {
        match args[i].as_str() {
            "--preset" => {
                let name = next(&args, &mut i);
                cfg = Some(match name.as_str() {
                    "rwp" => presets::random_waypoint_paper(),
                    "epfl" => presets::epfl_paper(),
                    "smoke" => presets::smoke(),
                    _ => {
                        eprintln!("unknown preset {name:?}");
                        usage()
                    }
                });
            }
            "--config" => {
                let path = next(&args, &mut i);
                let body = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                    eprintln!("cannot read {path}: {e}");
                    exit(1);
                });
                cfg = Some(serde_json::from_str(&body).unwrap_or_else(|e| {
                    eprintln!("invalid scenario JSON: {e}");
                    exit(1);
                }));
            }
            "--policy" => {
                let p = parse_policy(&next(&args, &mut i));
                overrides.push(Box::new(move |c| c.policy = p));
            }
            "--routing" => {
                let r = parse_routing(&next(&args, &mut i));
                overrides.push(Box::new(move |c| c.routing = r));
            }
            "--seed" => {
                let s: u64 = next(&args, &mut i).parse().unwrap_or_else(|_| usage());
                overrides.push(Box::new(move |c| c.seed = s));
            }
            "--duration" => {
                let d: f64 = next(&args, &mut i).parse().unwrap_or_else(|_| usage());
                overrides.push(Box::new(move |c| c.duration_secs = d));
            }
            "--copies" => {
                let l: u32 = next(&args, &mut i).parse().unwrap_or_else(|_| usage());
                overrides.push(Box::new(move |c| c.initial_copies = l));
            }
            "--buffer-mb" => {
                let b: f64 = next(&args, &mut i).parse().unwrap_or_else(|_| usage());
                overrides.push(Box::new(move |c| {
                    c.buffer_capacity = sdsrp::core::units::Bytes::from_mb(b)
                }));
            }
            "--immunity" => {
                let m = match next(&args, &mut i).as_str() {
                    "none" => ImmunityMode::None,
                    "oracle" => ImmunityMode::OracleFlood,
                    "gossip" => ImmunityMode::AntipacketGossip,
                    other => {
                        eprintln!("unknown immunity {other:?}");
                        usage()
                    }
                };
                overrides.push(Box::new(move |c| c.immunity = m));
            }
            "--warmup" => {
                let w: f64 = next(&args, &mut i).parse().unwrap_or_else(|_| usage());
                overrides.push(Box::new(move |c| c.warmup_secs = w));
            }
            "--no-priority-cache" => priority_cache = false,
            "--taylor-terms" => {
                let k: usize = next(&args, &mut i).parse().unwrap_or_else(|_| usage());
                let terms = (k > 0).then_some(k);
                overrides.push(Box::new(move |c| {
                    c.policy = match c.policy {
                        PolicyKind::Sdsrp => PolicyKind::SdsrpCustom {
                            lambda: sdsrp::sdsrp::LambdaMode::Online {
                                prior: 1.0 / 2000.0,
                                min_samples: 5,
                            },
                            taylor_terms: terms,
                            reject_dropped: true,
                            gossip: true,
                        },
                        PolicyKind::SdsrpCustom {
                            lambda,
                            reject_dropped,
                            gossip,
                            ..
                        } => PolicyKind::SdsrpCustom {
                            lambda,
                            taylor_terms: terms,
                            reject_dropped,
                            gossip,
                        },
                        other => other,
                    };
                }));
            }
            "--json" => json_out = true,
            "--emit-config" => emit_config = true,
            "--timeseries" => timeseries_path = Some(next(&args, &mut i)),
            "--telemetry" => telemetry_path = Some(next(&args, &mut i)),
            "--validate" => validate = true,
            "--delay-oracle" => delay_oracle = true,
            "--replay" => replay_path = Some(next(&args, &mut i)),
            "--sweep" => sweep_axis = Some(next(&args, &mut i)),
            "--seeds" => {
                sweep_seeds = next(&args, &mut i).parse().unwrap_or_else(|_| usage());
            }
            "--threads" => {
                sweep_threads = next(&args, &mut i).parse().unwrap_or_else(|_| usage());
            }
            "--world-threads" => {
                world_threads = next(&args, &mut i).parse().unwrap_or_else(|_| usage());
            }
            "--validate-cells" => validate_cells = true,
            "--checkpoint" => checkpoint = Some(next(&args, &mut i)),
            "--resume" => resume = true,
            "--workers" => {
                fleet.workers = next(&args, &mut i).parse().unwrap_or_else(|_| usage());
            }
            "--worker-bin" => fleet.worker_bin = Some(next(&args, &mut i)),
            "--cell-timeout" => {
                fleet.cell_timeout = next(&args, &mut i).parse().unwrap_or_else(|_| usage());
            }
            "--worker-timeout" => {
                fleet.worker_timeout = next(&args, &mut i).parse().unwrap_or_else(|_| usage());
            }
            "--retries" => {
                fleet.retries = next(&args, &mut i).parse().unwrap_or_else(|_| usage());
            }
            "--worker-arg" => fleet.worker_args.push(next(&args, &mut i)),
            "--transport" => fleet.transport = next(&args, &mut i),
            "--listen" => fleet.listen = next(&args, &mut i),
            "--token" => fleet.token = Some(next(&args, &mut i)),
            "--accept-timeout" => {
                fleet.accept_timeout = next(&args, &mut i).parse().unwrap_or_else(|_| usage());
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument {other:?}");
                usage()
            }
        }
        i += 1;
    }

    if let Some(path) = &replay_path {
        replay_from_file(path);
    }

    let mut cfg = cfg.unwrap_or_else(presets::smoke);
    for f in &overrides {
        f(&mut cfg);
    }

    if let Some(axis) = &sweep_axis {
        run_sweep_mode(
            cfg,
            axis,
            sweep_seeds,
            sweep_threads,
            world_threads,
            validate_cells,
            checkpoint,
            resume,
            fleet,
        );
    }

    if emit_config {
        println!(
            "{}",
            serde_json::to_string_pretty(&cfg).expect("config serialises")
        );
        return;
    }

    if delay_oracle {
        run_delay_oracle_mode(cfg, world_threads.max(sweep_threads), json_out);
    }

    let mut world = World::build(&cfg);
    // Single runs have no sweep to fan out, so --threads means the
    // world's intra-run thread count here (--world-threads also works).
    world.set_threads(world_threads.max(sweep_threads).max(1));
    if !priority_cache {
        world.set_priority_cache(false);
    }
    if let Some(path) = &telemetry_path {
        let sink = JsonlSink::create(std::path::Path::new(path)).unwrap_or_else(|e| {
            eprintln!("cannot create {path}: {e}");
            exit(1);
        });
        world.attach_recorder(Recorder::enabled(4096).with_sink(Box::new(sink)));
    }
    if timeseries_path.is_some() {
        world.enable_timeseries(cfg.tick_secs.max(1.0) * 10.0);
    }
    let run_started = std::time::Instant::now();
    let (report, validation, mut recorder) = if validate {
        world.enable_validation(ValidateConfig::default());
        let (report, validation, recorder) = world.run_validated();
        (report, Some(validation), recorder)
    } else {
        let (report, recorder) = world.run_with_recorder();
        (report, None, recorder)
    };
    let wall_clock_secs = run_started.elapsed().as_secs_f64();
    let timeseries = recorder.take_timeseries();

    if let (Some(path), Some(ts)) = (&timeseries_path, &timeseries) {
        std::fs::write(path, ts.to_csv()).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            exit(1);
        });
        eprintln!("time series written to {path}");
    }

    if let Some(path) = &telemetry_path {
        if let Some(err) = recorder.sink_error() {
            eprintln!("telemetry export to {path} failed: {err}");
            exit(1);
        }
        let manifest = manifest_for_run(&cfg, &report, &recorder, wall_clock_secs);
        let manifest_path = format!("{path}.manifest.json");
        std::fs::write(&manifest_path, manifest.to_json()).unwrap_or_else(|e| {
            eprintln!("cannot write {manifest_path}: {e}");
            exit(1);
        });
        eprintln!("telemetry written to {path} (manifest: {manifest_path})");
    }

    if json_out {
        #[derive(serde::Serialize)]
        struct Out<'a> {
            scenario: &'a str,
            policy: &'a str,
            seed: u64,
            created: u64,
            delivered: u64,
            delivery_ratio: f64,
            avg_hopcount: f64,
            overhead_ratio: f64,
            /// `null` when nothing was delivered (no latency data).
            avg_latency: Option<f64>,
            buffer_drops: u64,
            incoming_rejects: u64,
            expirations: u64,
            immunity_purges: u64,
        }
        let out = Out {
            scenario: &cfg.name,
            policy: cfg.policy.label(),
            seed: cfg.seed,
            created: report.created(),
            delivered: report.delivered(),
            delivery_ratio: report.delivery_ratio(),
            avg_hopcount: report.avg_hopcount(),
            overhead_ratio: report.overhead_ratio(),
            avg_latency: report.avg_latency(),
            buffer_drops: report.buffer_drops(),
            incoming_rejects: report.incoming_rejects(),
            expirations: report.expirations(),
            immunity_purges: report.immunity_purges(),
        };
        println!(
            "{}",
            serde_json::to_string_pretty(&out).expect("serialises")
        );
    } else {
        println!("scenario        : {}", cfg.name);
        println!("policy          : {}", cfg.policy.label());
        println!("seed            : {}", cfg.seed);
        println!("created         : {}", report.created());
        println!("delivered       : {}", report.delivered());
        println!("delivery ratio  : {:.4}", report.delivery_ratio());
        println!("avg hopcounts   : {:.2}", report.avg_hopcount());
        println!("overhead ratio  : {:.2}", report.overhead_ratio());
        match report.avg_latency() {
            Some(lat) => println!("avg latency (s) : {lat:.0}"),
            None => println!("avg latency (s) : —"),
        }
        println!("buffer drops    : {}", report.buffer_drops());
        println!("incoming rejects: {}", report.incoming_rejects());
        println!("expirations     : {}", report.expirations());
        println!("immunity purges : {}", report.immunity_purges());
    }

    if let Some(validation) = &validation {
        eprintln!("{}", validation.summary());
        if !validation.ok() {
            for v in &validation.violations {
                eprintln!("  {v}");
            }
            exit(1);
        }
    }
}
