#!/bin/bash
set -x
cd /root/repo
echo "=== fig3 (full) ==="; ./target/release/fig3 --out results > results/fig3.md 2>&1
echo "=== fig4 ==="; ./target/release/fig4 --out results > results/fig4.md 2>&1
echo "=== fig8 (full, 2 seeds) ==="; ./target/release/fig8 --seeds 2 --out results > results/fig8.md 2>&1
echo "=== ablations (2 seeds) ==="; ./target/release/ablations --seeds 2 > results/ablations.md 2>&1
echo "=== fig9 (full, 1 seed) ==="; ./target/release/fig9 --seeds 1 --out results > results/fig9.md 2>&1
echo "ALL_FIGURES_DONE"
